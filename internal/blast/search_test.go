package blast

import (
	"bytes"
	"strings"
	"testing"

	"pario/internal/seq"
	"pario/internal/util"
)

// randomDNA builds a random nucleotide sequence of length n.
func randomDNA(rng *util.RNG, id string, n int) *seq.Sequence {
	data := make([]byte, n)
	for i := range data {
		data[i] = seq.NucLetter[rng.Intn(4)]
	}
	return &seq.Sequence{ID: id, Kind: seq.Nucleotide, Data: data}
}

// plant embeds fragment into host at offset.
func plant(host *seq.Sequence, fragment []byte, offset int) {
	copy(host.Data[offset:], fragment)
}

func TestBlastNFindsPlantedMatch(t *testing.T) {
	rng := util.NewRNG(101)
	query := randomDNA(rng, "query", 568)
	subjects := make([]*seq.Sequence, 8)
	for i := range subjects {
		subjects[i] = randomDNA(rng, "subj"+string(rune('0'+i)), 5000)
	}
	// Plant the query's middle 200 bases into subject 3.
	plant(subjects[3], query.Data[180:380], 1000)

	res, err := Search(query, &SliceSource{Seqs: subjects}, DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("planted match not found")
	}
	best := res.Hits[0]
	if best.SubjectID != "subj3" {
		t.Fatalf("best hit = %s, want subj3", best.SubjectID)
	}
	hsp := best.HSPs[0]
	if hsp.EValue > 1e-20 {
		t.Errorf("planted 200-mer e-value = %g, should be tiny", hsp.EValue)
	}
	// The HSP must cover (most of) the planted region.
	if hsp.QueryFrom > 185 || hsp.QueryTo < 375 {
		t.Errorf("query extents [%d,%d) miss the planted region [180,380)", hsp.QueryFrom, hsp.QueryTo)
	}
	if hsp.SubjectFrom > 1005 || hsp.SubjectTo < 1195 {
		t.Errorf("subject extents [%d,%d) miss the planted site [1000,1200)", hsp.SubjectFrom, hsp.SubjectTo)
	}
	if hsp.Identities < 195 {
		t.Errorf("identities = %d, want ~200", hsp.Identities)
	}
}

func TestBlastNReverseStrand(t *testing.T) {
	rng := util.NewRNG(102)
	query := randomDNA(rng, "query", 300)
	subject := randomDNA(rng, "subj", 3000)
	// Plant the reverse complement of a query chunk.
	rc := query.Subsequence(50, 250).ReverseComplement()
	plant(subject, rc.Data, 500)

	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("reverse-strand match not found")
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.QueryFrame != -1 {
		t.Errorf("query frame = %v, want -1", hsp.QueryFrame)
	}
	// Coordinates are reported on the forward strand.
	if hsp.QueryFrom > 55 || hsp.QueryTo < 245 {
		t.Errorf("query extents [%d,%d) miss planted region [50,250)", hsp.QueryFrom, hsp.QueryTo)
	}
	if hsp.SubjectFrom > 505 || hsp.SubjectTo < 695 {
		t.Errorf("subject extents [%d,%d) miss planted site [500,700)", hsp.SubjectFrom, hsp.SubjectTo)
	}
}

func TestBlastNNoFalsePositivesOnTinyDB(t *testing.T) {
	rng := util.NewRNG(103)
	query := randomDNA(rng, "query", 100)
	subject := randomDNA(rng, "subj", 200)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{},
		Params{Program: BlastN, EValue: 1e-6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Errorf("random 100 vs 200 bases matched at E<=1e-6: %+v", res.Hits)
	}
}

func TestBlastNTolerantToMutations(t *testing.T) {
	rng := util.NewRNG(104)
	query := randomDNA(rng, "query", 400)
	subject := randomDNA(rng, "subj", 4000)
	// Plant a mutated copy: 3% point mutations.
	copyData := append([]byte(nil), query.Data...)
	for i := 0; i < 12; i++ {
		copyData[rng.Intn(len(copyData))] = seq.NucLetter[rng.Intn(4)]
	}
	plant(subject, copyData, 2000)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("mutated copy not found")
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.AlignLen < 300 {
		t.Errorf("alignment length = %d, want near 400", hsp.AlignLen)
	}
}

func TestBlastPSelfHit(t *testing.T) {
	prot := &seq.Sequence{ID: "p1", Kind: seq.Protein,
		Data: []byte("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPFDEHVKLVNELTEFAK")}
	res, err := Search(prot, &SliceSource{Seqs: []*seq.Sequence{prot}}, DBInfo{}, Params{Program: BlastP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatalf("self search found %d hits", len(res.Hits))
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.Identities != prot.Len() {
		t.Errorf("self hit identities = %d, want %d", hsp.Identities, prot.Len())
	}
	if hsp.QueryFrom != 0 || hsp.QueryTo != prot.Len() {
		t.Errorf("self hit extents [%d,%d)", hsp.QueryFrom, hsp.QueryTo)
	}
}

func TestBlastPRelatedProteins(t *testing.T) {
	// Two serum albumin fragments with scattered substitutions should
	// still align via BLOSUM62.
	a := &seq.Sequence{ID: "a", Kind: seq.Protein,
		Data: []byte("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF")}
	b := &seq.Sequence{ID: "b", Kind: seq.Protein,
		Data: []byte("MKWVTFISLLFLFSSAYSRGVFRREAHKSEIAHRYNDLGEQHFKGLVLVAFSQYLQKCPF")}
	res, err := Search(a, &SliceSource{Seqs: []*seq.Sequence{b}}, DBInfo{}, Params{Program: BlastP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 {
		t.Fatal("related proteins not found")
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.Identities < 50 {
		t.Errorf("identities = %d, want >= 50", hsp.Identities)
	}
}

func TestBlastXFindsProteinInDNA(t *testing.T) {
	prot := &seq.Sequence{ID: "prot", Kind: seq.Protein,
		Data: []byte("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF")}
	// Back-translate deterministically (pick one codon per residue).
	dna := backTranslate(prot.Data)
	rng := util.NewRNG(105)
	host := randomDNA(rng, "dnaquery", len(dna)+600)
	plant(host, dna, 300)
	res, err := Search(host, &SliceSource{Seqs: []*seq.Sequence{prot}}, DBInfo{}, Params{Program: BlastX})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("blastx found nothing")
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.QueryFrame == 0 {
		t.Error("blastx hit should carry a query frame")
	}
	// The planted ORF starts at nucleotide 300.
	if hsp.QueryFrom > 310 || hsp.QueryTo < 300+len(dna)-10 {
		t.Errorf("query extents [%d,%d) miss planted ORF [300,%d)", hsp.QueryFrom, hsp.QueryTo, 300+len(dna))
	}
}

func TestTBlastNFindsORFInDatabase(t *testing.T) {
	prot := &seq.Sequence{ID: "prot", Kind: seq.Protein,
		Data: []byte("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF")}
	dna := backTranslate(prot.Data)
	rng := util.NewRNG(106)
	host := randomDNA(rng, "genome", len(dna)+1000)
	plant(host, dna, 500)
	res, err := Search(prot, &SliceSource{Seqs: []*seq.Sequence{host}}, DBInfo{}, Params{Program: TBlastN})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("tblastn found nothing")
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.SubjectFrame == 0 {
		t.Error("tblastn hit should carry a subject frame")
	}
	if hsp.SubjectFrom > 510 || hsp.SubjectTo < 500+len(dna)-10 {
		t.Errorf("subject extents [%d,%d) miss planted ORF [500,%d)", hsp.SubjectFrom, hsp.SubjectTo, 500+len(dna))
	}
}

func TestTBlastXFindsSharedORF(t *testing.T) {
	prot := []byte("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF")
	dna := backTranslate(prot)
	rng := util.NewRNG(107)
	q := randomDNA(rng, "q", len(dna)+400)
	s := randomDNA(rng, "s", len(dna)+800)
	plant(q, dna, 200)
	plant(s, dna, 400)
	res, err := Search(q, &SliceSource{Seqs: []*seq.Sequence{s}}, DBInfo{}, Params{Program: TBlastX})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("tblastx found nothing")
	}
}

// backTranslate maps residues to an arbitrary fixed codon.
func backTranslate(prot []byte) []byte {
	codon := map[byte]string{
		'A': "GCT", 'R': "CGT", 'N': "AAT", 'D': "GAT", 'C': "TGT",
		'Q': "CAA", 'E': "GAA", 'G': "GGT", 'H': "CAT", 'I': "ATT",
		'L': "CTG", 'K': "AAA", 'M': "ATG", 'F': "TTT", 'P': "CCT",
		'S': "TCT", 'T': "ACT", 'W': "TGG", 'Y': "TAT", 'V': "GTT",
	}
	var out []byte
	for _, aa := range prot {
		out = append(out, codon[aa]...)
	}
	return out
}

func TestSearchRejectsWrongKinds(t *testing.T) {
	dna := &seq.Sequence{ID: "d", Kind: seq.Nucleotide, Data: []byte("ACGT")}
	prot := &seq.Sequence{ID: "p", Kind: seq.Protein, Data: []byte("MKWV")}
	if _, err := Search(prot, &SliceSource{}, DBInfo{}, Params{Program: BlastN}); err == nil {
		t.Error("blastn accepted a protein query")
	}
	if _, err := Search(dna, &SliceSource{Seqs: []*seq.Sequence{dna}}, DBInfo{}, Params{Program: BlastP}); err == nil {
		t.Error("blastp accepted a nucleotide query")
	}
	if _, err := Search(dna, &SliceSource{Seqs: []*seq.Sequence{prot}}, DBInfo{}, Params{Program: BlastN}); err == nil {
		t.Error("blastn accepted a protein database")
	}
}

func TestMaxTargetSeqs(t *testing.T) {
	rng := util.NewRNG(108)
	query := randomDNA(rng, "query", 200)
	var subjects []*seq.Sequence
	for i := 0; i < 5; i++ {
		s := randomDNA(rng, "s"+string(rune('0'+i)), 1000)
		plant(s, query.Data[50:150], 100)
		subjects = append(subjects, s)
	}
	res, err := Search(query, &SliceSource{Seqs: subjects}, DBInfo{},
		Params{Program: BlastN, MaxTargetSeqs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 2 {
		t.Errorf("MaxTargetSeqs=2 returned %d hits", len(res.Hits))
	}
}

func TestHitOrderingByEValue(t *testing.T) {
	rng := util.NewRNG(109)
	query := randomDNA(rng, "query", 300)
	weak := randomDNA(rng, "weak", 2000)
	strong := randomDNA(rng, "strong", 2000)
	plant(weak, query.Data[100:150], 500)  // 50-base match
	plant(strong, query.Data[50:250], 500) // 200-base match
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{weak, strong}}, DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) < 2 {
		t.Fatalf("expected 2 hits, got %d", len(res.Hits))
	}
	if res.Hits[0].SubjectID != "strong" {
		t.Errorf("hits not ordered by significance: first = %s", res.Hits[0].SubjectID)
	}
	if res.Hits[0].BestEValue() > res.Hits[1].BestEValue() {
		t.Error("e-values out of order")
	}
}

func TestSearchStatsPopulated(t *testing.T) {
	rng := util.NewRNG(110)
	query := randomDNA(rng, "query", 200)
	subject := randomDNA(rng, "s", 2000)
	plant(subject, query.Data[:100], 200)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.DBSequences != 1 || st.DBLetters != 2000 {
		t.Errorf("db totals wrong: %+v", st)
	}
	if st.SeedHits == 0 || st.UngappedExts == 0 || st.GappedExts == 0 {
		t.Errorf("work counters empty: %+v", st)
	}
	if st.Lambda == 0 || st.K == 0 {
		t.Errorf("statistics params empty: %+v", st)
	}
}

func TestProgramParsing(t *testing.T) {
	for _, name := range []string{"blastn", "blastp", "blastx", "tblastn", "tblastx"} {
		p, err := ParseProgram(name)
		if err != nil {
			t.Fatalf("ParseProgram(%s): %v", name, err)
		}
		if p.String() != name {
			t.Errorf("round trip %s -> %s", name, p.String())
		}
	}
	if _, err := ParseProgram("megablast"); err == nil {
		t.Error("unknown program accepted")
	}
}

func TestParamsValidate(t *testing.T) {
	p := Params{Program: BlastN}.Defaults()
	if err := p.Validate(); err != nil {
		t.Errorf("default params invalid: %v", err)
	}
	bad := p
	bad.WordSize = 1
	if err := bad.Validate(); err == nil {
		t.Error("word size 1 accepted")
	}
	bad = p
	bad.WordSize = 20
	if err := bad.Validate(); err == nil {
		t.Error("blastn word size 20 accepted")
	}
	bad = p
	bad.EValue = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative e-value accepted")
	}
	prot := Params{Program: BlastP}.Defaults()
	prot.WordSize = 7
	if err := prot.Validate(); err == nil {
		t.Error("protein word size 7 accepted")
	}
}

func TestDefaultsPerProgram(t *testing.T) {
	n := Params{Program: BlastN}.Defaults()
	if n.WordSize != 11 || !n.BothStrands || n.Scheme.Kind != seq.Nucleotide {
		t.Errorf("blastn defaults wrong: %+v", n)
	}
	p := Params{Program: BlastP}.Defaults()
	if p.WordSize != 3 || p.Threshold != 11 || p.TwoHitWindow != 40 {
		t.Errorf("blastp defaults wrong: %+v", p)
	}
	x := Params{Program: TBlastX}.Defaults()
	if x.WordSize != 3 || x.Scheme.Kind != seq.Protein {
		t.Errorf("tblastx defaults wrong: %+v", x)
	}
}

func TestReportOutput(t *testing.T) {
	rng := util.NewRNG(111)
	query := randomDNA(rng, "myquery", 200)
	subject := randomDNA(rng, "mysubject", 1000)
	plant(subject, query.Data[50:150], 300)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res, query, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"blastn search", "Query= myquery", "mysubject", "Lambda"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var tab bytes.Buffer
	if err := WriteTabular(&tab, res); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(tab.String(), "myquery\tmysubject\t") {
		t.Errorf("tabular output wrong: %q", tab.String())
	}
}

func TestReportNoHits(t *testing.T) {
	rng := util.NewRNG(112)
	query := randomDNA(rng, "q", 50)
	subject := randomDNA(rng, "s", 60)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{},
		Params{Program: BlastN, EValue: 1e-30})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteReport(&buf, res, query, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "No hits found") {
		t.Error("empty report missing marker")
	}
}

// seedFunc adapts a plain function to the seedSink the lookup tables
// scan into.
type seedFunc func(qpos, spos int)

func (f seedFunc) handleSeed(qpos, spos int) { f(qpos, spos) }

func TestNucLookup(t *testing.T) {
	q := (&seq.Sequence{Kind: seq.Nucleotide, Data: []byte("ACGTACGTACG")}).Codes()
	lt := buildNucLookup(q, 4, nil)
	var hits [][2]int
	s := (&seq.Sequence{Kind: seq.Nucleotide, Data: []byte("TTACGTTT")}).Codes()
	lt.scan(s, seedFunc(func(qp, sp int) { hits = append(hits, [2]int{qp, sp}) }))
	// Subject words: "TACG" at 1 (query positions 3, 7) and "ACGT"
	// at 2 (query positions 0, 4): four seed hits in scan order.
	want := [][2]int{{3, 1}, {7, 1}, {0, 2}, {4, 2}}
	if len(hits) != len(want) {
		t.Fatalf("hits = %v, want %v", hits, want)
	}
	for i, h := range hits {
		if h != want[i] {
			t.Errorf("hit %d = %v, want %v", i, h, want[i])
		}
	}
}

func TestNucLookupShortInputs(t *testing.T) {
	lt := buildNucLookup([]byte{0, 1}, 4, nil)
	called := false
	lt.scan([]byte{0, 1, 2, 3}, seedFunc(func(qp, sp int) { called = true }))
	if called {
		t.Error("short query should produce no hits")
	}
	lt2 := buildNucLookup([]byte{0, 1, 2, 3}, 4, nil)
	lt2.scan([]byte{0}, seedFunc(func(qp, sp int) { called = true }))
	if called {
		t.Error("short subject should produce no hits")
	}
}

func TestProtLookupNeighborhood(t *testing.T) {
	scheme := Params{Program: BlastP}.Defaults().Scheme
	q := (&seq.Sequence{Kind: seq.Protein, Data: []byte("WWW")}).Codes()
	lt := buildProtLookup(q, 3, 11, seq.NumAA, scheme, nil)
	// Exact word WWW scores 33 >= 11: must be present.
	var found bool
	lt.scan(q, seedFunc(func(qp, sp int) {
		if qp == 0 && sp == 0 {
			found = true
		}
	}))
	if !found {
		t.Error("exact word not in its own neighborhood")
	}
	// A conservative substitution W->F (score 1+11+11 = 23 >= 11)
	// should also seed.
	fww := (&seq.Sequence{Kind: seq.Protein, Data: []byte("FWW")}).Codes()
	found = false
	lt.scan(fww, seedFunc(func(qp, sp int) { found = true }))
	if !found {
		t.Error("neighborhood word FWW not found for query WWW")
	}
	// A drastic triple substitution should not seed: PPP vs WWW
	// scores 3*(-4) < 11.
	ppp := (&seq.Sequence{Kind: seq.Protein, Data: []byte("PPP")}).Codes()
	found = false
	lt.scan(ppp, seedFunc(func(qp, sp int) { found = true }))
	if found {
		t.Error("PPP should not be in WWW's neighborhood")
	}
}

func TestCullHSPs(t *testing.T) {
	hsps := []rawHSP{
		{score: 100, qFrom: 0, qTo: 100, sFrom: 0, sTo: 100},
		{score: 50, qFrom: 10, qTo: 90, sFrom: 10, sTo: 90},     // contained
		{score: 60, qFrom: 200, qTo: 300, sFrom: 200, sTo: 300}, // separate
	}
	kept := cullHSPs(hsps)
	if len(kept) != 2 {
		t.Fatalf("culled to %d, want 2: %+v", len(kept), kept)
	}
	if kept[0].score != 100 || kept[1].score != 60 {
		t.Errorf("wrong HSPs kept: %+v", kept)
	}
}

func TestTranslatedEffectiveLengths(t *testing.T) {
	// Translated programs measure the search space in residues:
	// effective lengths divide nucleotide lengths by 3, so the
	// effective search space must be well under the naive
	// nucleotide-length product.
	prot := &seq.Sequence{ID: "p", Kind: seq.Protein,
		Data: []byte("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF")}
	rng := util.NewRNG(113)
	genome := randomDNA(rng, "g", 3000)
	res, err := Search(prot, &SliceSource{Seqs: []*seq.Sequence{genome}}, DBInfo{},
		Params{Program: TBlastN})
	if err != nil {
		t.Fatal(err)
	}
	naive := int64(prot.Len()) * 3000
	if res.Stats.EffSearchLen >= naive/2 {
		t.Errorf("tblastn effective space %d not reduced from naive %d", res.Stats.EffSearchLen, naive)
	}
	// blastn on the same subject keeps nucleotide-space lengths.
	q := randomDNA(rng, "q", 60)
	resN, err := Search(q, &SliceSource{Seqs: []*seq.Sequence{genome}}, DBInfo{},
		Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	if resN.Stats.EffSearchLen <= res.Stats.EffSearchLen {
		t.Errorf("blastn space %d should exceed tblastn space %d",
			resN.Stats.EffSearchLen, res.Stats.EffSearchLen)
	}
}
