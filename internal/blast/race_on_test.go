//go:build race

package blast

// raceEnabled reports that this test binary was built with the race
// detector, whose shadow-memory bookkeeping inflates allocation
// counts; allocation-budget tests skip themselves under it.
const raceEnabled = true
