package blast

import (
	"pario/internal/align"
)

// Word lookup tables map fixed-length words of the subject stream to
// query positions where a seed hit should be investigated.

// nucLookup indexes a nucleotide query's exact W-mers by their 2W-bit
// packed value (W up to 31, covering megablast's 28-mers).
type nucLookup struct {
	w    int
	mask uint64
	pos  map[uint64][]int32
}

// buildNucLookup indexes every word of the dense-coded query whose
// positions are all unmasked (masked = nil disables filtering).
func buildNucLookup(query []byte, w int, masked []bool) *nucLookup {
	lt := &nucLookup{
		w:    w,
		mask: (1 << (2 * uint(w))) - 1,
		pos:  make(map[uint64][]int32),
	}
	if len(query) < w {
		return lt
	}
	var word uint64
	for i := 0; i < len(query); i++ {
		word = (word<<2 | uint64(query[i])) & lt.mask
		if i >= w-1 && wordAllowed(masked, i-w+1, w) {
			lt.pos[word] = append(lt.pos[word], int32(i-w+1))
		}
	}
	return lt
}

// scan streams the subject's words and calls hit(queryPos, subjectPos)
// for each seed match. subjectPos is the word's start offset.
func (lt *nucLookup) scan(subject []byte, hit func(qpos, spos int)) {
	if len(subject) < lt.w {
		return
	}
	var word uint64
	for i := 0; i < len(subject); i++ {
		word = (word<<2 | uint64(subject[i])) & lt.mask
		if i >= lt.w-1 {
			if positions, ok := lt.pos[word]; ok {
				spos := i - lt.w + 1
				for _, qpos := range positions {
					hit(int(qpos), spos)
				}
			}
		}
	}
}

// protLookup indexes a protein query's neighborhood words: every
// possible W-mer scoring >= threshold against some query word, under
// the scheme's substitution matrix.
type protLookup struct {
	w        int
	alphabet int
	buckets  [][]int32 // word index -> query positions
}

// buildProtLookup enumerates neighborhood words for each unmasked
// query position. alphabet is the dense protein alphabet size.
func buildProtLookup(query []byte, w, threshold, alphabet int, s *align.Scheme, masked []bool) *protLookup {
	size := 1
	for i := 0; i < w; i++ {
		size *= alphabet
	}
	lt := &protLookup{w: w, alphabet: alphabet, buckets: make([][]int32, size)}
	if len(query) < w {
		return lt
	}
	// For each query word, enumerate candidate words with branch and
	// bound: at depth d, the best achievable remainder is the sum of
	// per-position maxima.
	maxRemain := make([]int, w+1) // maxRemain[d] = max achievable score from positions d..w-1
	word := make([]byte, w)
	for qpos := 0; qpos+w <= len(query); qpos++ {
		if !wordAllowed(masked, qpos, w) {
			continue
		}
		qw := query[qpos : qpos+w]
		maxRemain[w] = 0
		for d := w - 1; d >= 0; d-- {
			best := -(1 << 30)
			for c := 0; c < alphabet; c++ {
				if sc := s.Table[qw[d]][c]; sc > best {
					best = sc
				}
			}
			maxRemain[d] = maxRemain[d+1] + best
		}
		lt.enumerate(qw, word, 0, 0, threshold, maxRemain, int32(qpos), s)
	}
	return lt
}

func (lt *protLookup) enumerate(qw, word []byte, depth, score, threshold int, maxRemain []int, qpos int32, s *align.Scheme) {
	if depth == lt.w {
		if score >= threshold {
			idx := lt.wordIndex(word)
			lt.buckets[idx] = append(lt.buckets[idx], qpos)
		}
		return
	}
	if score+maxRemain[depth] < threshold {
		return // prune: cannot reach threshold
	}
	row := s.Table[qw[depth]]
	for c := 0; c < lt.alphabet; c++ {
		word[depth] = byte(c)
		lt.enumerate(qw, word, depth+1, score+row[c], threshold, maxRemain, qpos, s)
	}
}

func (lt *protLookup) wordIndex(word []byte) int {
	idx := 0
	for _, c := range word {
		idx = idx*lt.alphabet + int(c)
	}
	return idx
}

// scan streams the subject's words and reports seed hits.
func (lt *protLookup) scan(subject []byte, hit func(qpos, spos int)) {
	if len(subject) < lt.w {
		return
	}
	// Rolling index: idx = idx*alphabet + next, modulo alphabet^w.
	modulo := len(lt.buckets)
	idx := 0
	for i := 0; i < len(subject); i++ {
		idx = (idx*lt.alphabet + int(subject[i])) % modulo
		if i >= lt.w-1 {
			if positions := lt.buckets[idx]; positions != nil {
				spos := i - lt.w + 1
				for _, qpos := range positions {
					hit(int(qpos), spos)
				}
			}
		}
	}
}
