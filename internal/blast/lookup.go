package blast

import (
	"pario/internal/align"
)

// Word lookup tables map fixed-length words of the subject stream to
// query positions where a seed hit should be investigated.

// seedSink receives seed matches from a lookup table scan. The
// searcher is the production implementation; tests substitute
// recorders.
type seedSink interface {
	handleSeed(qpos, spos int)
}

// packedScanner is implemented by lookup tables that can stream a
// 2-bit packed subject directly, without the caller unpacking it to
// one-byte codes first. The seed sequence produced is identical to
// scan over the unpacked codes.
type packedScanner interface {
	scanPacked(packed []byte, n int, sink seedSink)
}

// nucDirectBits bounds the direct-indexed table: words of up to this
// many packed bits (2 per base) index a flat 2^bits bucket array;
// wider words — classic blastn 11-mers, megablast 28-mers — go
// through the open-addressed hash. 16 bits keeps the direct table at
// 256 KB of bucket bounds.
const nucDirectBits = 16

// nucEmptyKey marks an empty hash slot. Packed words occupy at most
// 62 bits (W <= 31), so all-ones can never collide with a real word.
const nucEmptyKey = ^uint64(0)

// nucLookup indexes a nucleotide query's exact W-mers by their 2W-bit
// packed value (W up to 31, covering megablast's 28-mers) in a flat
// CSR layout: entries holds every indexed query position grouped by
// word, and either a direct-indexed bounds array (small W) or an
// open-addressed uint64 hash (large W) locates a word's group. Both
// forms are immutable after construction and safe for concurrent
// scans.
type nucLookup struct {
	w    int
	mask uint64

	// entries holds query positions grouped by word, ascending within
	// each group (query scan order), shared by both index forms.
	entries []int32

	// Direct form (2W <= nucDirectBits): group of word v is
	// entries[starts[v]:starts[v+1]].
	starts []int32

	// Hash form: open addressing with linear probing. Slot i holds
	// keys[i] (nucEmptyKey = empty) and its group
	// entries[offs[i] : offs[i]+cnts[i]].
	keys  []uint64
	offs  []int32
	cnts  []int32
	shift uint // hash shift: 64 - log2(len(keys))
}

// nucHash spreads a packed word over the table's slot space
// (Fibonacci hashing: multiply by 2^64/phi, take the top bits).
func nucHash(word uint64, shift uint) uint64 {
	return (word * 0x9E3779B97F4A7C15) >> shift
}

// buildNucLookup indexes every word of the dense-coded query whose
// positions are all unmasked (masked = nil disables filtering).
func buildNucLookup(query []byte, w int, masked []bool) *nucLookup {
	lt := &nucLookup{
		w:    w,
		mask: (1 << (2 * uint(w))) - 1,
	}
	if len(query) < w {
		return lt
	}
	if 2*w <= nucDirectBits {
		lt.buildDirect(query, masked)
	} else {
		lt.buildHash(query, masked)
	}
	return lt
}

// buildDirect fills the direct-indexed CSR: one counting pass, a
// prefix sum, one filling pass.
func (lt *nucLookup) buildDirect(query []byte, masked []bool) {
	size := int(lt.mask) + 1
	lt.starts = make([]int32, size+1)
	w := lt.w
	var word uint64
	for i := 0; i < len(query); i++ {
		word = (word<<2 | uint64(query[i])) & lt.mask
		if i >= w-1 && wordAllowed(masked, i-w+1, w) {
			lt.starts[word+1]++
		}
	}
	for v := 0; v < size; v++ {
		lt.starts[v+1] += lt.starts[v]
	}
	lt.entries = make([]int32, lt.starts[size])
	next := make([]int32, size)
	copy(next, lt.starts[:size])
	word = 0
	for i := 0; i < len(query); i++ {
		word = (word<<2 | uint64(query[i])) & lt.mask
		if i >= w-1 && wordAllowed(masked, i-w+1, w) {
			lt.entries[next[word]] = int32(i - w + 1)
			next[word]++
		}
	}
}

// buildHash fills the open-addressed CSR. Capacity is the next power
// of two at or above 2x the indexed word count, so load factor stays
// under 0.5 and linear probes terminate quickly.
func (lt *nucLookup) buildHash(query []byte, masked []bool) {
	w := lt.w
	nWords := 0
	for i := w - 1; i < len(query); i++ {
		if wordAllowed(masked, i-w+1, w) {
			nWords++
		}
	}
	if nWords == 0 {
		return
	}
	capacity := 16
	for capacity < 2*nWords {
		capacity <<= 1
	}
	lt.shift = 64 - uint(log2(capacity))
	lt.keys = make([]uint64, capacity)
	for i := range lt.keys {
		lt.keys[i] = nucEmptyKey
	}
	lt.offs = make([]int32, capacity)
	lt.cnts = make([]int32, capacity)

	// Pass 1: insert keys, counting occurrences per slot.
	var word uint64
	for i := 0; i < len(query); i++ {
		word = (word<<2 | uint64(query[i])) & lt.mask
		if i >= w-1 && wordAllowed(masked, i-w+1, w) {
			lt.cnts[lt.slotInsert(word)]++
		}
	}
	// Prefix-sum the slot counts into group offsets (slot order —
	// grouping is by slot, order within a group is query order).
	var off int32
	for s := range lt.offs {
		lt.offs[s] = off
		off += lt.cnts[s]
	}
	// Pass 2: fill entries in query scan order, keeping each group's
	// positions ascending (the order the map-based table produced).
	lt.entries = make([]int32, off)
	fill := make([]int32, capacity)
	word = 0
	for i := 0; i < len(query); i++ {
		word = (word<<2 | uint64(query[i])) & lt.mask
		if i >= w-1 && wordAllowed(masked, i-w+1, w) {
			s := lt.slotFind(word)
			lt.entries[lt.offs[s]+fill[s]] = int32(i - w + 1)
			fill[s]++
		}
	}
}

// slotInsert finds word's slot, claiming an empty one if absent.
func (lt *nucLookup) slotInsert(word uint64) int {
	m := uint64(len(lt.keys) - 1)
	s := nucHash(word, lt.shift)
	for {
		k := lt.keys[s]
		if k == word {
			return int(s)
		}
		if k == nucEmptyKey {
			lt.keys[s] = word
			return int(s)
		}
		s = (s + 1) & m
	}
}

// slotFind locates an existing word's slot (the word must be present).
func (lt *nucLookup) slotFind(word uint64) int {
	m := uint64(len(lt.keys) - 1)
	s := nucHash(word, lt.shift)
	for lt.keys[s] != word {
		s = (s + 1) & m
	}
	return int(s)
}

// log2 returns floor(log2(n)) for a power of two n.
func log2(n int) int {
	b := 0
	for n > 1 {
		n >>= 1
		b++
	}
	return b
}

// scan streams the subject's words and calls sink.handleSeed(qpos,
// spos) for each seed match. spos is the word's start offset.
func (lt *nucLookup) scan(subject []byte, sink seedSink) {
	if len(subject) < lt.w || len(lt.entries) == 0 {
		return
	}
	if lt.starts != nil {
		lt.scanDirect(subject, sink)
	} else {
		lt.scanHash(subject, sink)
	}
}

func (lt *nucLookup) scanDirect(subject []byte, sink seedSink) {
	w, mask, starts, entries := lt.w, lt.mask, lt.starts, lt.entries
	var word uint64
	for i := 0; i < w-1; i++ {
		word = word<<2 | uint64(subject[i])
	}
	for i := w - 1; i < len(subject); i++ {
		word = (word<<2 | uint64(subject[i])) & mask
		st, en := starts[word], starts[word+1]
		if st < en {
			spos := i - w + 1
			for _, qpos := range entries[st:en] {
				sink.handleSeed(int(qpos), spos)
			}
		}
	}
}

func (lt *nucLookup) scanHash(subject []byte, sink seedSink) {
	w, mask, keys, shift := lt.w, lt.mask, lt.keys, lt.shift
	m := uint64(len(keys) - 1)
	var word uint64
	for i := 0; i < w-1; i++ {
		word = word<<2 | uint64(subject[i])
	}
	for i := w - 1; i < len(subject); i++ {
		word = (word<<2 | uint64(subject[i])) & mask
		s := nucHash(word, shift)
		for {
			k := keys[s]
			if k == nucEmptyKey {
				break
			}
			if k == word {
				spos := i - w + 1
				group := lt.entries[lt.offs[s] : lt.offs[s]+lt.cnts[s]]
				for _, qpos := range group {
					sink.handleSeed(int(qpos), spos)
				}
				break
			}
			s = (s + 1) & m
		}
	}
}

// scanPacked implements packedScanner: it rolls the same word stream
// as scan but pulls each base straight out of the 2-bit packed subject
// (base i lives at bits 2*(i%4) of byte i/4), so the search never
// materializes the subject's one-byte codes.
func (lt *nucLookup) scanPacked(packed []byte, n int, sink seedSink) {
	if n < lt.w || len(lt.entries) == 0 {
		return
	}
	if lt.starts != nil {
		lt.scanPackedDirect(packed, n, sink)
	} else {
		lt.scanPackedHash(packed, n, sink)
	}
}

func (lt *nucLookup) scanPackedDirect(packed []byte, n int, sink seedSink) {
	w, mask, starts, entries := lt.w, lt.mask, lt.starts, lt.entries
	var word uint64
	for i := 0; i < w-1; i++ {
		word = word<<2 | uint64((packed[i>>2]>>(uint(i&3)*2))&3)
	}
	for i := w - 1; i < n; i++ {
		word = (word<<2 | uint64((packed[i>>2]>>(uint(i&3)*2))&3)) & mask
		st, en := starts[word], starts[word+1]
		if st < en {
			spos := i - w + 1
			for _, qpos := range entries[st:en] {
				sink.handleSeed(int(qpos), spos)
			}
		}
	}
}

func (lt *nucLookup) scanPackedHash(packed []byte, n int, sink seedSink) {
	w, mask, keys, shift := lt.w, lt.mask, lt.keys, lt.shift
	m := uint64(len(keys) - 1)
	var word uint64
	for i := 0; i < w-1; i++ {
		word = word<<2 | uint64((packed[i>>2]>>(uint(i&3)*2))&3)
	}
	for i := w - 1; i < n; i++ {
		word = (word<<2 | uint64((packed[i>>2]>>(uint(i&3)*2))&3)) & mask
		s := nucHash(word, shift)
		for {
			k := keys[s]
			if k == nucEmptyKey {
				break
			}
			if k == word {
				spos := i - w + 1
				group := lt.entries[lt.offs[s] : lt.offs[s]+lt.cnts[s]]
				for _, qpos := range group {
					sink.handleSeed(int(qpos), spos)
				}
				break
			}
			s = (s + 1) & m
		}
	}
}

// protLookup indexes a protein query's neighborhood words: every
// possible W-mer scoring >= threshold against some query word, under
// the scheme's substitution matrix.
type protLookup struct {
	w        int
	alphabet int
	hi       int       // alphabet^(w-1): weight of a word's outgoing high digit
	buckets  [][]int32 // word index -> query positions
}

// buildProtLookup enumerates neighborhood words for each unmasked
// query position. alphabet is the dense protein alphabet size.
func buildProtLookup(query []byte, w, threshold, alphabet int, s *align.Scheme, masked []bool) *protLookup {
	size := 1
	for i := 0; i < w; i++ {
		size *= alphabet
	}
	lt := &protLookup{w: w, alphabet: alphabet, hi: size / alphabet, buckets: make([][]int32, size)}
	if len(query) < w {
		return lt
	}
	// For each query word, enumerate candidate words with branch and
	// bound: at depth d, the best achievable remainder is the sum of
	// per-position maxima.
	maxRemain := make([]int, w+1) // maxRemain[d] = max achievable score from positions d..w-1
	word := make([]byte, w)
	for qpos := 0; qpos+w <= len(query); qpos++ {
		if !wordAllowed(masked, qpos, w) {
			continue
		}
		qw := query[qpos : qpos+w]
		maxRemain[w] = 0
		for d := w - 1; d >= 0; d-- {
			best := -(1 << 30)
			for c := 0; c < alphabet; c++ {
				if sc := s.Table[qw[d]][c]; sc > best {
					best = sc
				}
			}
			maxRemain[d] = maxRemain[d+1] + best
		}
		lt.enumerate(qw, word, 0, 0, threshold, maxRemain, int32(qpos), s)
	}
	return lt
}

func (lt *protLookup) enumerate(qw, word []byte, depth, score, threshold int, maxRemain []int, qpos int32, s *align.Scheme) {
	if depth == lt.w {
		if score >= threshold {
			idx := lt.wordIndex(word)
			lt.buckets[idx] = append(lt.buckets[idx], qpos)
		}
		return
	}
	if score+maxRemain[depth] < threshold {
		return // prune: cannot reach threshold
	}
	row := s.Table[qw[depth]]
	for c := 0; c < lt.alphabet; c++ {
		word[depth] = byte(c)
		lt.enumerate(qw, word, depth+1, score+row[c], threshold, maxRemain, qpos, s)
	}
}

func (lt *protLookup) wordIndex(word []byte) int {
	idx := 0
	for _, c := range word {
		idx = idx*lt.alphabet + int(c)
	}
	return idx
}

// scan streams the subject's words and reports seed hits. The rolling
// index drops the word's outgoing high digit instead of reducing
// modulo alphabet^w, so the per-position work is one multiply-add and
// one multiply-subtract.
func (lt *protLookup) scan(subject []byte, sink seedSink) {
	if len(subject) < lt.w {
		return
	}
	w, alphabet, hi := lt.w, lt.alphabet, lt.hi
	idx := 0
	for i := 0; i < len(subject); i++ {
		if i >= w {
			idx -= int(subject[i-w]) * hi
		}
		idx = idx*alphabet + int(subject[i])
		if i >= w-1 {
			if positions := lt.buckets[idx]; positions != nil {
				spos := i - w + 1
				for _, qpos := range positions {
					sink.handleSeed(int(qpos), spos)
				}
			}
		}
	}
}
