package blast

import (
	"time"

	"pario/internal/telemetry"
)

// PipeMetrics publishes the parallel subject pipeline's overlap
// telemetry into a metrics registry: cumulative shard busy/idle
// seconds say whether a worker is compute- or decode-bound, decode
// stall seconds say how often the I/O stage blocked on full shard
// queues, and the merge-queue gauges expose reordering depth. A nil
// *PipeMetrics records nothing.
type PipeMetrics struct {
	shardBusy     *telemetry.Gauge
	shardIdle     *telemetry.Gauge
	decodeStall   *telemetry.Gauge
	mergeDepth    *telemetry.Gauge
	mergeDepthMax *telemetry.Gauge
	scannedBases  *telemetry.Gauge
	packedExts    *telemetry.Gauge
}

// NewPipeMetrics registers the pipeline metric families on reg.
func NewPipeMetrics(reg *telemetry.Registry) *PipeMetrics {
	if reg == nil {
		return nil
	}
	return &PipeMetrics{
		shardBusy: reg.Gauge("pario_blast_shard_busy_seconds_total",
			"Cumulative seconds search shards spent computing (seeding + extension)."),
		shardIdle: reg.Gauge("pario_blast_shard_idle_seconds_total",
			"Cumulative seconds search shards spent waiting for decoded subjects — the I/O-bound signal."),
		decodeStall: reg.Gauge("pario_blast_decode_stall_seconds_total",
			"Cumulative seconds the decode stage spent blocked on full shard queues — the compute-bound signal."),
		mergeDepth: reg.Gauge("pario_blast_merge_queue_depth",
			"Out-of-order searched subjects currently buffered by the ordered merge."),
		mergeDepthMax: reg.Gauge("pario_blast_merge_queue_depth_max",
			"High-water mark of the ordered merge's reorder buffer."),
		scannedBases: reg.Gauge("pario_blast_scanned_bases_total",
			"Subject letters streamed through the seeding kernel; over shard busy seconds this is the search-side bases/sec rate."),
		packedExts: reg.Gauge("pario_blast_packed_exts_total",
			"Ungapped extensions served by the 2-bit packed kernel instead of the byte kernel."),
	}
}

// observeKernel folds one searched subject's kernel counters in.
func (m *PipeMetrics) observeKernel(bases, packedExts int64) {
	if m == nil {
		return
	}
	m.scannedBases.Add(float64(bases))
	m.packedExts.Add(float64(packedExts))
}

// observeShard folds one drained shard's busy/idle time in.
func (m *PipeMetrics) observeShard(busy, idle time.Duration) {
	if m == nil {
		return
	}
	m.shardBusy.Add(busy.Seconds())
	m.shardIdle.Add(idle.Seconds())
}

// observeDecodeStall records time the decode stage spent blocked
// handing a subject to the shard queue.
func (m *PipeMetrics) observeDecodeStall(d time.Duration) {
	if m == nil {
		return
	}
	m.decodeStall.Add(d.Seconds())
}

// observeMergeDepth tracks the reorder buffer's current size.
func (m *PipeMetrics) observeMergeDepth(n int) {
	if m == nil {
		return
	}
	v := float64(n)
	m.mergeDepth.Set(v)
	if v > m.mergeDepthMax.Value() {
		m.mergeDepthMax.Set(v)
	}
}
