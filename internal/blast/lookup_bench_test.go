package blast

import (
	"fmt"
	"testing"

	"pario/internal/util"
)

// countSink swallows seeds, defeating dead-code elimination without
// the cost of recording them.
type countSink struct{ n int }

func (c *countSink) handleSeed(qpos, spos int) { c.n++ }

// BenchmarkNucLookupScan compares the flat CSR word index against the
// map-based implementation it replaced, for classic blastn 11-mers
// (direct-indexed form) and megablast 28-mers (open-addressed hash
// form). The subject carries planted query chunks so the hit path is
// exercised, not just the miss path.
func BenchmarkNucLookupScan(b *testing.B) {
	rng := util.NewRNG(99)
	query := denseDNA(rng, 568)
	subject := denseDNA(rng, 1<<20)
	for off := 10000; off+400 < len(subject); off += 150000 {
		copy(subject[off:], query[50:450])
	}
	for _, w := range []int{11, 28} {
		csr := buildNucLookup(query, w, nil)
		ref := buildRefNucLookup(query, w, nil)
		var sink countSink
		b.Run(fmt.Sprintf("csr/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(subject)))
			for i := 0; i < b.N; i++ {
				csr.scan(subject, &sink)
			}
		})
		b.Run(fmt.Sprintf("map/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(subject)))
			for i := 0; i < b.N; i++ {
				ref.scan(subject, &sink)
			}
		})
	}
}

// BenchmarkSearchSubject measures one full subject search (seeding +
// extension + culling) through the pooled searcher, the unit of work
// a pipeline shard executes per subject.
func BenchmarkSearchSubject(b *testing.B) {
	rng := util.NewRNG(100)
	query := randomDNA(rng, "q", 568)
	subject := randomDNA(rng, "s", 1<<18)
	plant(subject, query.Data[100:400], 5000)
	p := Params{Program: BlastN}.Defaults()
	eng, err := newEngine(query, p)
	if err != nil {
		b.Fatal(err)
	}
	sr := newSearcher(eng)
	b.ReportAllocs()
	b.SetBytes(int64(subject.Len()))
	for i := 0; i < b.N; i++ {
		if hsps := sr.searchSubject(subject); len(hsps) == 0 {
			b.Fatal("planted match not found")
		}
	}
}
