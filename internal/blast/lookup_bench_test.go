package blast

import (
	"fmt"
	"runtime"
	"testing"

	"pario/internal/seq"
	"pario/internal/util"
)

// countSink swallows seeds, defeating dead-code elimination without
// the cost of recording them.
type countSink struct{ n int }

func (c *countSink) handleSeed(qpos, spos int) { c.n++ }

// BenchmarkNucLookupScan compares the flat CSR word index against the
// map-based implementation it replaced, for classic blastn 11-mers
// (direct-indexed form) and megablast 28-mers (open-addressed hash
// form). The subject carries planted query chunks so the hit path is
// exercised, not just the miss path.
func BenchmarkNucLookupScan(b *testing.B) {
	rng := util.NewRNG(99)
	query := denseDNA(rng, 568)
	subject := denseDNA(rng, 1<<20)
	for off := 10000; off+400 < len(subject); off += 150000 {
		copy(subject[off:], query[50:450])
	}
	for _, w := range []int{11, 28} {
		csr := buildNucLookup(query, w, nil)
		ref := buildRefNucLookup(query, w, nil)
		var sink countSink
		b.Run(fmt.Sprintf("csr/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(subject)))
			for i := 0; i < b.N; i++ {
				csr.scan(subject, &sink)
			}
		})
		b.Run(fmt.Sprintf("map/w=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(subject)))
			for i := 0; i < b.N; i++ {
				ref.scan(subject, &sink)
			}
		})
	}
}

// BenchmarkSearchSubject measures one full subject search (seeding +
// extension + culling) through the pooled searcher, the unit of work
// a pipeline shard executes per subject.
func BenchmarkSearchSubject(b *testing.B) {
	rng := util.NewRNG(100)
	query := randomDNA(rng, "q", 568)
	subject := randomDNA(rng, "s", 1<<18)
	plant(subject, query.Data[100:400], 5000)
	p := Params{Program: BlastN}.Defaults()
	eng, err := newEngine(query, p)
	if err != nil {
		b.Fatal(err)
	}
	sr := newSearcher(eng)
	b.ReportAllocs()
	b.SetBytes(int64(subject.Len()))
	for i := 0; i < b.N; i++ {
		if hsps := sr.searchSubject(subject); len(hsps) == 0 {
			b.Fatal("planted match not found")
		}
	}
}

// BenchmarkSearchSubjectPacked is BenchmarkSearchSubject's workload
// with the subject delivered as a 2-bit packed payload, the form a
// zero-copy blastdb scan hands the pipeline: seeding runs scanPacked
// and ungapped extension runs align.PackedExtend, neither unpacking
// the subject. SetBytes is the letter count (not the payload size), so
// MB/s is bases/sec and directly comparable with the byte-path number.
func BenchmarkSearchSubjectPacked(b *testing.B) {
	rng := util.NewRNG(100)
	query := randomDNA(rng, "q", 568)
	subject := randomDNA(rng, "s", 1<<18)
	plant(subject, query.Data[100:400], 5000)
	letters := subject.Len()
	packed, err := seq.Pack2Bit(subject.Data)
	if err != nil {
		b.Fatal(err)
	}
	subject = seq.NewPacked2Bit("s", "", packed, letters)
	p := Params{Program: BlastN}.Defaults()
	eng, err := newEngine(query, p)
	if err != nil {
		b.Fatal(err)
	}
	sr := newSearcher(eng)
	b.ReportAllocs()
	b.SetBytes(int64(letters))
	for i := 0; i < b.N; i++ {
		if hsps := sr.searchSubject(subject); len(hsps) == 0 {
			b.Fatal("planted match not found")
		}
	}
}

// BenchmarkSearchSubjectThreads runs the full parallel pipeline over
// packed subjects with GOMAXPROCS pinned to the shard count, so each
// sub-benchmark measures what the pipeline can extract from exactly
// that many cores. On a single-vCPU host every rung times-slices one
// core and the curve is flat — the sweep proves the harness, and the
// numbers become a real scaling record when run on multicore hardware.
// SetBytes is total database letters: MB/s is end-to-end bases/sec.
func BenchmarkSearchSubjectThreads(b *testing.B) {
	rng := util.NewRNG(101)
	query := randomDNA(rng, "q", 568)
	const nSubj = 32
	subjects := make([]*seq.Sequence, nSubj)
	var letters int64
	for i := range subjects {
		s := randomDNA(rng, fmt.Sprintf("s%d", i), 1<<17)
		if i%5 == 2 {
			plant(s, query.Data[100:400], 5000)
		}
		letters += int64(s.Len())
		packed, err := seq.Pack2Bit(s.Data)
		if err != nil {
			b.Fatal(err)
		}
		subjects[i] = seq.NewPacked2Bit(s.ID, "", packed, s.Len())
	}
	for _, threads := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("gomaxprocs=%d", threads), func(b *testing.B) {
			defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(threads))
			p := Params{Program: BlastN, Threads: threads}
			b.ReportAllocs()
			b.SetBytes(letters)
			for i := 0; i < b.N; i++ {
				res, err := Search(query, &SliceSource{Seqs: subjects}, DBInfo{}, p)
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Hits) == 0 {
					b.Fatal("planted matches not found")
				}
			}
		})
	}
}
