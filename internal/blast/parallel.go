package blast

import (
	"io"
	"sync"
	"time"

	"pario/internal/seq"
)

// The parallel subject pipeline: a decode stage pulls subjects off
// the SubjectSource (the only goroutine touching the stream, so
// chio/readahead I/O overlaps compute), N shard searchers run the
// seeded search, and an ordered merge reassembles results in stream
// order. Every subject is searched independently against the
// immutable engine, each shard keeps private SearchStats and diagonal
// pools, and the merge emits subjects strictly by sequence number —
// so the outcome is bit-identical to the sequential loop at any
// thread count.

// pipelineDepth is the per-shard bound on in-flight subjects in each
// of the two queues; it limits memory while keeping shards fed across
// I/O latency spikes.
const pipelineDepth = 8

// subjectJob is one decoded subject tagged with its stream position.
type subjectJob struct {
	seq  int64
	subj *seq.Sequence
}

// subjectDone is one searched subject awaiting the ordered merge.
type subjectDone struct {
	seq  int64
	subj *seq.Sequence
	hsps []rawHSP
}

// runPipeline searches the subject stream with the given number of
// shards and returns the raw hits in stream order plus the database
// totals, exactly as the sequential loop would have produced them.
func (eng *engine) runPipeline(subjects SubjectSource, threads int, m *PipeMetrics) (raw []rawHit, dbLetters, dbSeqs int64, err error) {
	jobs := make(chan subjectJob, threads*pipelineDepth)
	results := make(chan subjectDone, threads*pipelineDepth)

	// Decode stage: the sole reader of the subject stream. On error it
	// stops feeding and the error surfaces after the queues drain.
	var decodeErr error
	go func() {
		defer close(jobs)
		var seqno int64
		for {
			subj, err := subjects.Next()
			if err == io.EOF {
				return
			}
			if err != nil {
				decodeErr = err
				return
			}
			if err := eng.checkSubjectKind(subj); err != nil {
				decodeErr = err
				return
			}
			if m != nil {
				t := time.Now()
				jobs <- subjectJob{seq: seqno, subj: subj}
				m.observeDecodeStall(time.Since(t))
			} else {
				jobs <- subjectJob{seq: seqno, subj: subj}
			}
			seqno++
		}
	}()

	// Search shards: each owns one searcher over the shared immutable
	// engine; per-shard stats are folded together once it drains.
	var (
		wg       sync.WaitGroup
		statsMu  sync.Mutex
		sumStats SearchStats
	)
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sr := newSearcher(eng)
			var busy, idle time.Duration
			var lastBases, lastExts int64
			for {
				t0 := time.Now()
				job, ok := <-jobs
				if !ok {
					break
				}
				t1 := time.Now()
				hsps := sr.searchSubject(job.subj)
				t2 := time.Now()
				idle += t1.Sub(t0)
				busy += t2.Sub(t1)
				m.observeKernel(sr.stats.ScannedBases-lastBases, sr.stats.PackedExts-lastExts)
				lastBases, lastExts = sr.stats.ScannedBases, sr.stats.PackedExts
				results <- subjectDone{seq: job.seq, subj: job.subj, hsps: hsps}
			}
			statsMu.Lock()
			sumStats.addCounts(sr.stats)
			statsMu.Unlock()
			m.observeShard(busy, idle)
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Ordered merge: buffer out-of-order arrivals, emit strictly by
	// sequence number so hit order and culling match the sequential
	// engine's.
	pending := make(map[int64]subjectDone)
	var next int64
	for done := range results {
		pending[done.seq] = done
		m.observeMergeDepth(len(pending))
		for {
			d, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			dbLetters += int64(d.subj.Len())
			dbSeqs++
			if len(d.hsps) > 0 {
				raw = append(raw, rawHit{subject: d.subj, hsps: d.hsps})
			}
		}
	}
	if decodeErr != nil {
		return nil, 0, 0, decodeErr
	}
	eng.stats.addCounts(sumStats)
	return raw, dbLetters, dbSeqs, nil
}
