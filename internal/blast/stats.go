// Package blast implements the Basic Local Alignment Search Tool from
// scratch: word-seeded search with ungapped and gapped X-drop
// extension, two-hit filtering for protein searches, Karlin-Altschul
// statistics (lambda, K, H, e-values, bit scores), and all five
// classic programs (blastn, blastp, blastx, tblastn, tblastx).
package blast

import (
	"fmt"
	"math"

	"pario/internal/align"
	"pario/internal/seq"
)

// KarlinParams holds the Karlin-Altschul statistical parameters of a
// scoring system: Lambda and K scale raw scores into e-values, H is
// the relative entropy (average information per aligned pair, nats).
type KarlinParams struct {
	Lambda float64
	K      float64
	H      float64
}

// BitScore converts a raw alignment score into a normalized bit score.
func (kp KarlinParams) BitScore(raw int) float64 {
	return (kp.Lambda*float64(raw) - math.Log(kp.K)) / math.Ln2
}

// EValue returns the expected number of HSPs with score >= raw in a
// search space of effective query length m and database length n.
func (kp KarlinParams) EValue(raw int, m, n int64) float64 {
	return kp.K * float64(m) * float64(n) * math.Exp(-kp.Lambda*float64(raw))
}

// RawCutoff returns the minimum raw score whose e-value is <= evalue
// in an (m x n) search space.
func (kp KarlinParams) RawCutoff(evalue float64, m, n int64) int {
	s := math.Log(kp.K*float64(m)*float64(n)/evalue) / kp.Lambda
	c := int(math.Ceil(s))
	if c < 1 {
		c = 1
	}
	return c
}

// UniformNucFreqs is the background distribution used for nucleotide
// statistics (equal base frequencies).
var UniformNucFreqs = []float64{0.25, 0.25, 0.25, 0.25}

// RobinsonFreqs are the Robinson & Robinson amino-acid background
// frequencies used by NCBI BLAST for protein statistics, indexed by
// the dense protein alphabet (ambiguity codes and stop get 0).
var RobinsonFreqs = func() []float64 {
	f := make([]float64, seq.NumAA)
	set := func(letter byte, v float64) { f[seq.AAIndex(letter)] = v }
	set('A', 0.07805)
	set('R', 0.05129)
	set('N', 0.04487)
	set('D', 0.05364)
	set('C', 0.01925)
	set('Q', 0.04264)
	set('E', 0.06295)
	set('G', 0.07377)
	set('H', 0.02199)
	set('I', 0.05142)
	set('L', 0.09019)
	set('K', 0.05744)
	set('M', 0.02243)
	set('F', 0.03856)
	set('P', 0.05203)
	set('S', 0.07120)
	set('T', 0.05841)
	set('W', 0.01330)
	set('Y', 0.03216)
	set('V', 0.06441)
	return f
}()

// ComputeUngappedParams numerically derives the ungapped
// Karlin-Altschul parameters for a scheme and background letter
// frequencies using the algorithm of Karlin & Altschul (1990) as
// implemented in NCBI's blast_stat.c: Lambda by Newton iteration, H
// from the score moment, and K from the ladder-epoch sum.
func ComputeUngappedParams(s *align.Scheme, freqs []float64) (KarlinParams, error) {
	dist, lo, hi, err := scoreDistribution(s, freqs)
	if err != nil {
		return KarlinParams{}, err
	}
	lambda, err := solveLambda(dist, lo, hi)
	if err != nil {
		return KarlinParams{}, err
	}
	// H = lambda * sum_s s * p(s) * exp(lambda*s)
	var h float64
	for sc := lo; sc <= hi; sc++ {
		h += float64(sc) * dist[sc-lo] * math.Exp(lambda*float64(sc))
	}
	h *= lambda
	k, err := computeK(dist, lo, hi, lambda, h)
	if err != nil {
		return KarlinParams{}, err
	}
	return KarlinParams{Lambda: lambda, K: k, H: h}, nil
}

// scoreDistribution builds p(s) over integer scores for a random
// aligned letter pair under the background frequencies.
func scoreDistribution(s *align.Scheme, freqs []float64) (dist []float64, lo, hi int, err error) {
	lo, hi = 1<<30, -(1 << 30)
	for i, pi := range freqs {
		if pi == 0 {
			continue
		}
		for j, qj := range freqs {
			if qj == 0 {
				continue
			}
			sc := s.Table[i][j]
			if sc < lo {
				lo = sc
			}
			if sc > hi {
				hi = sc
			}
		}
	}
	if lo > hi {
		return nil, 0, 0, fmt.Errorf("blast: empty score distribution")
	}
	if lo >= 0 {
		return nil, 0, 0, fmt.Errorf("blast: scoring scheme has no negative scores; statistics undefined")
	}
	if hi <= 0 {
		return nil, 0, 0, fmt.Errorf("blast: scoring scheme has no positive scores; statistics undefined")
	}
	dist = make([]float64, hi-lo+1)
	for i, pi := range freqs {
		if pi == 0 {
			continue
		}
		for j, qj := range freqs {
			if qj == 0 {
				continue
			}
			dist[s.Table[i][j]-lo] += pi * qj
		}
	}
	return dist, lo, hi, nil
}

// solveLambda finds the unique positive root of
// sum_s p(s) exp(lambda*s) = 1 by bisection + Newton refinement.
func solveLambda(dist []float64, lo, hi int) (float64, error) {
	// Expected score must be negative for a root to exist.
	var mean float64
	for sc := lo; sc <= hi; sc++ {
		mean += float64(sc) * dist[sc-lo]
	}
	if mean >= 0 {
		return 0, fmt.Errorf("blast: expected pair score %.4f >= 0; no Karlin lambda exists", mean)
	}
	f := func(lambda float64) float64 {
		var sum float64
		for sc := lo; sc <= hi; sc++ {
			sum += dist[sc-lo] * math.Exp(lambda*float64(sc))
		}
		return sum - 1
	}
	// Bracket the root: f(0) = 0 with f'(0) = mean < 0, and
	// f(lambda) -> +inf as lambda grows (positive scores exist).
	a, b := 1e-9, 0.5
	for f(b) < 0 {
		b *= 2
		if b > 1e4 {
			return 0, fmt.Errorf("blast: lambda root not bracketed")
		}
	}
	for iter := 0; iter < 200; iter++ {
		m := (a + b) / 2
		if f(m) < 0 {
			a = m
		} else {
			b = m
		}
	}
	return (a + b) / 2, nil
}

// computeK implements the general-case K computation of
// BlastKarlinLHtoK: convolve the score distribution over ladder
// epochs, accumulate sigma, and apply the lattice-case formula.
func computeK(dist []float64, lo, hi int, lambda, h float64) (float64, error) {
	if h <= 0 {
		return 0, fmt.Errorf("blast: non-positive entropy H=%v", h)
	}
	d := scoreGCD(dist, lo, hi)

	// Special case from Karlin-Altschul: score range {-1, +1}.
	if lo == -1 && hi == 1 {
		p1 := dist[1-lo]
		pm1 := dist[-1-lo]
		k := (p1 - pm1) * (p1 - pm1) / pm1
		return k, nil
	}

	const iterLimit = 60
	// conv holds the distribution of the k-step random walk sum.
	conv := make([]float64, 1)
	conv[0] = 1 // delta at 0 for k=0 steps
	convLo := 0
	var sigma float64
	for k := 1; k <= iterLimit; k++ {
		// Convolve with the single-step distribution.
		newLo := convLo + lo
		newLen := len(conv) + (hi - lo)
		next := make([]float64, newLen)
		for i, p := range conv {
			if p == 0 {
				continue
			}
			for sc := lo; sc <= hi; sc++ {
				next[i+sc-lo] += p * dist[sc-lo]
			}
		}
		conv, convLo = next, newLo
		var term float64
		for i, p := range conv {
			if p == 0 {
				continue
			}
			s := convLo + i
			if s < 0 {
				term += p * math.Exp(lambda*float64(s))
			} else {
				term += p
			}
		}
		sigma += term / float64(k)
	}
	num := float64(d) * lambda * math.Exp(-2*sigma)
	den := h * (1 - math.Exp(-lambda*float64(d)))
	if den == 0 {
		return 0, fmt.Errorf("blast: degenerate K denominator")
	}
	return num / den, nil
}

// scoreGCD finds the gcd of all scores with non-zero probability.
func scoreGCD(dist []float64, lo, hi int) int {
	g := 0
	for sc := lo; sc <= hi; sc++ {
		if dist[sc-lo] == 0 || sc == 0 {
			continue
		}
		a := sc
		if a < 0 {
			a = -a
		}
		g = gcd(g, a)
	}
	if g == 0 {
		g = 1
	}
	return g
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// gappedParamsTable holds the simulation-derived gapped
// Karlin-Altschul parameters published by NCBI for the scoring
// systems this package ships. Gapped statistics cannot be derived
// analytically; these are the standard published values.
var gappedParamsTable = map[string]KarlinParams{
	// blastn match/mismatch with gap open/extend. For stringent
	// nucleotide gap costs NCBI uses the ungapped values.
	"match+1/mismatch-3,5,2": {Lambda: 1.374, K: 0.711, H: 1.31},
	"match+1/mismatch-2,5,2": {Lambda: 1.28, K: 0.46, H: 0.85},
	"match+2/mismatch-3,5,2": {Lambda: 0.675, K: 0.111, H: 0.62},
	// blastp BLOSUM62 gap tables (NCBI blast_stat.c).
	"BLOSUM62,11,1": {Lambda: 0.267, K: 0.041, H: 0.14},
	"BLOSUM62,10,1": {Lambda: 0.243, K: 0.024, H: 0.10},
	"BLOSUM62,12,1": {Lambda: 0.283, K: 0.059, H: 0.19},
	"BLOSUM62,10,2": {Lambda: 0.293, K: 0.077, H: 0.23},
	"BLOSUM62,11,2": {Lambda: 0.297, K: 0.082, H: 0.27},
}

// GappedParams returns the gapped Karlin-Altschul parameters for a
// scheme: the published table value when known, otherwise the
// computed ungapped parameters (a conservative fallback; e-values
// then slightly underestimate significance).
func GappedParams(s *align.Scheme, freqs []float64) (KarlinParams, error) {
	key := fmt.Sprintf("%s,%d,%d", s.Name, s.GapOpen, s.GapExtend)
	if kp, ok := gappedParamsTable[key]; ok {
		return kp, nil
	}
	return ComputeUngappedParams(s, freqs)
}

// LengthAdjustment computes the BLAST effective-length correction: the
// expected HSP length l = ln(K*m*n)/H, iterated so the effective
// lengths stay positive.
func LengthAdjustment(kp KarlinParams, queryLen int, dbLen int64, dbSeqs int64) int {
	if kp.H <= 0 || dbSeqs <= 0 {
		return 0
	}
	m := float64(queryLen)
	n := float64(dbLen)
	ell := 0.0
	for i := 0; i < 5; i++ {
		effM := m - ell
		effN := n - ell*float64(dbSeqs)
		if effM < 1 {
			effM = 1
		}
		if effN < 1 {
			effN = 1
		}
		next := math.Log(kp.K*effM*effN) / kp.H
		if next < 0 {
			next = 0
		}
		ell = next
	}
	if ell >= m {
		ell = m - 1
	}
	if ell < 0 {
		ell = 0
	}
	return int(ell)
}
