package blast

import (
	"math"
	"testing"

	"pario/internal/align"
)

func approxEq(got, want, relTol float64) bool {
	if want == 0 {
		return math.Abs(got) < relTol
	}
	return math.Abs(got-want)/math.Abs(want) <= relTol
}

func TestUngappedParamsBlastn(t *testing.T) {
	// For +1/-3 with uniform base frequencies the published NCBI
	// values are lambda=1.374, K=0.711, H=1.31.
	kp, err := ComputeUngappedParams(align.NucleotideScheme(1, -3, 5, 2), UniformNucFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(kp.Lambda, 1.374, 0.01) {
		t.Errorf("lambda = %v, want ~1.374", kp.Lambda)
	}
	if !approxEq(kp.K, 0.711, 0.05) {
		t.Errorf("K = %v, want ~0.711", kp.K)
	}
	if !approxEq(kp.H, 1.31, 0.05) {
		t.Errorf("H = %v, want ~1.31", kp.H)
	}
}

func TestUngappedParamsBlosum62(t *testing.T) {
	// Published ungapped BLOSUM62 values: lambda=0.3176, K=0.134, H=0.40.
	kp, err := ComputeUngappedParams(align.DefaultProtein(), RobinsonFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(kp.Lambda, 0.3176, 0.02) {
		t.Errorf("lambda = %v, want ~0.3176", kp.Lambda)
	}
	if !approxEq(kp.K, 0.134, 0.10) {
		t.Errorf("K = %v, want ~0.134", kp.K)
	}
	if !approxEq(kp.H, 0.40, 0.10) {
		t.Errorf("H = %v, want ~0.40", kp.H)
	}
}

func TestLambdaFundamentalIdentity(t *testing.T) {
	// By definition, sum p(s) exp(lambda*s) must equal 1.
	schemes := []*align.Scheme{
		align.NucleotideScheme(1, -3, 5, 2),
		align.NucleotideScheme(1, -2, 5, 2),
		align.NucleotideScheme(2, -3, 5, 2),
		align.DefaultProtein(),
	}
	freqs := [][]float64{UniformNucFreqs, UniformNucFreqs, UniformNucFreqs, RobinsonFreqs}
	for i, s := range schemes {
		kp, err := ComputeUngappedParams(s, freqs[i])
		if err != nil {
			t.Fatalf("scheme %d: %v", i, err)
		}
		dist, lo, hi, err := scoreDistribution(s, freqs[i])
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for sc := lo; sc <= hi; sc++ {
			sum += dist[sc-lo] * math.Exp(kp.Lambda*float64(sc))
		}
		if !approxEq(sum, 1.0, 1e-6) {
			t.Errorf("scheme %d: sum p(s)e^(lambda s) = %v, want 1", i, sum)
		}
		if kp.K <= 0 || kp.K >= 1 {
			t.Errorf("scheme %d: implausible K = %v", i, kp.K)
		}
		if kp.H <= 0 {
			t.Errorf("scheme %d: H = %v", i, kp.H)
		}
	}
}

func TestUngappedParamsRejectsDegenerate(t *testing.T) {
	// All-positive scheme: expected score positive, no lambda.
	s := &align.Scheme{
		Table:     [][]int{{1, 1}, {1, 1}},
		GapOpen:   1,
		GapExtend: 1,
	}
	if _, err := ComputeUngappedParams(s, []float64{0.5, 0.5}); err == nil {
		t.Error("expected error for scheme without negative scores")
	}
	s2 := &align.Scheme{
		Table:     [][]int{{-1, -1}, {-1, -1}},
		GapOpen:   1,
		GapExtend: 1,
	}
	if _, err := ComputeUngappedParams(s2, []float64{0.5, 0.5}); err == nil {
		t.Error("expected error for scheme without positive scores")
	}
}

func TestEValueMonotonicity(t *testing.T) {
	kp := KarlinParams{Lambda: 1.37, K: 0.711, H: 1.31}
	prev := math.Inf(1)
	for s := 10; s <= 100; s += 10 {
		e := kp.EValue(s, 568, 1<<20)
		if e >= prev {
			t.Fatalf("e-value not decreasing at score %d: %v >= %v", s, e, prev)
		}
		prev = e
	}
	// Doubling the search space doubles E.
	e1 := kp.EValue(50, 568, 1000)
	e2 := kp.EValue(50, 568, 2000)
	if !approxEq(e2/e1, 2.0, 1e-9) {
		t.Errorf("E not linear in n: ratio %v", e2/e1)
	}
}

func TestBitScore(t *testing.T) {
	kp := KarlinParams{Lambda: 0.267, K: 0.041, H: 0.14}
	// bits = (lambda*S - ln K)/ln 2
	want := (0.267*100 - math.Log(0.041)) / math.Ln2
	if got := kp.BitScore(100); !approxEq(got, want, 1e-12) {
		t.Errorf("BitScore = %v, want %v", got, want)
	}
}

func TestRawCutoffInvertsEValue(t *testing.T) {
	kp := KarlinParams{Lambda: 1.37, K: 0.711, H: 1.31}
	for _, ev := range []float64{10, 1, 1e-3, 1e-10} {
		cut := kp.RawCutoff(ev, 568, 1<<30)
		if e := kp.EValue(cut, 568, 1<<30); e > ev {
			t.Errorf("cutoff %d still has E=%v > %v", cut, e, ev)
		}
		if cut > 1 {
			if e := kp.EValue(cut-1, 568, 1<<30); e <= ev {
				t.Errorf("cutoff %d not minimal: E(cut-1)=%v <= %v", cut, e, ev)
			}
		}
	}
}

func TestGappedParamsTableHit(t *testing.T) {
	kp, err := GappedParams(align.Blosum62(11, 1), RobinsonFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Lambda != 0.267 || kp.K != 0.041 {
		t.Errorf("BLOSUM62 11/1 gapped params = %+v", kp)
	}
	kp, err = GappedParams(align.NucleotideScheme(1, -3, 5, 2), UniformNucFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if kp.Lambda != 1.374 {
		t.Errorf("blastn gapped lambda = %v", kp.Lambda)
	}
}

func TestGappedParamsFallback(t *testing.T) {
	// Unusual gap costs: falls back to computed ungapped values.
	kp, err := GappedParams(align.NucleotideScheme(1, -3, 9, 4), UniformNucFreqs)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(kp.Lambda, 1.374, 0.01) {
		t.Errorf("fallback lambda = %v", kp.Lambda)
	}
}

func TestLengthAdjustment(t *testing.T) {
	kp := KarlinParams{Lambda: 1.37, K: 0.711, H: 1.31}
	la := LengthAdjustment(kp, 568, 2_700_000_000, 1_760_000)
	if la <= 0 || la >= 568 {
		t.Errorf("length adjustment = %d out of range", la)
	}
	// Larger databases need larger adjustments.
	la2 := LengthAdjustment(kp, 568, 27_000_000_000, 1_760_000)
	if la2 < la {
		t.Errorf("adjustment shrank with database growth: %d -> %d", la, la2)
	}
	if LengthAdjustment(kp, 100, 1000, 0) != 0 {
		t.Error("zero sequences should give zero adjustment")
	}
}

func TestScoreGCD(t *testing.T) {
	dist := []float64{0.5, 0, 0, 0, 0.5} // scores -2 and +2
	if g := scoreGCD(dist, -2, 2); g != 2 {
		t.Errorf("gcd = %d, want 2", g)
	}
	dist2 := []float64{0.3, 0.3, 0, 0.4} // scores -1, 0, +2
	if g := scoreGCD(dist2, -1, 2); g != 1 {
		t.Errorf("gcd = %d, want 1", g)
	}
}
