package blast

import (
	"strings"
	"testing"

	"pario/internal/seq"
	"pario/internal/util"
)

func nucSeq(s string) *seq.Sequence {
	return &seq.Sequence{ID: "t", Kind: seq.Nucleotide, Data: []byte(s)}
}

func protSeq(s string) *seq.Sequence {
	return &seq.Sequence{ID: "t", Kind: seq.Protein, Data: []byte(s)}
}

func TestDustMasksPolyA(t *testing.T) {
	s := nucSeq(strings.Repeat("A", 200))
	ivs := DustMask(s, DefaultDust())
	if TotalMasked(ivs) < 150 {
		t.Errorf("poly-A masked only %d of 200", TotalMasked(ivs))
	}
}

func TestDustMasksTandemRepeat(t *testing.T) {
	s := nucSeq(strings.Repeat("AT", 100))
	ivs := DustMask(s, DefaultDust())
	if TotalMasked(ivs) < 150 {
		t.Errorf("AT microsatellite masked only %d of 200", TotalMasked(ivs))
	}
	s2 := nucSeq(strings.Repeat("CAG", 70))
	ivs2 := DustMask(s2, DefaultDust())
	if TotalMasked(ivs2) < 150 {
		t.Errorf("CAG repeat masked only %d of 210", TotalMasked(ivs2))
	}
}

func TestDustLeavesRandomAlone(t *testing.T) {
	rng := util.NewRNG(31)
	data := make([]byte, 2000)
	for i := range data {
		data[i] = seq.NucLetter[rng.Intn(4)]
	}
	ivs := DustMask(&seq.Sequence{Kind: seq.Nucleotide, Data: data}, DefaultDust())
	if n := TotalMasked(ivs); n > 100 {
		t.Errorf("random DNA masked %d of 2000", n)
	}
}

func TestDustMasksEmbeddedRun(t *testing.T) {
	rng := util.NewRNG(32)
	data := make([]byte, 600)
	for i := range data {
		data[i] = seq.NucLetter[rng.Intn(4)]
	}
	copy(data[200:], strings.Repeat("A", 120))
	ivs := DustMask(&seq.Sequence{Kind: seq.Nucleotide, Data: data}, DefaultDust())
	covered := false
	for _, iv := range ivs {
		if iv.From <= 230 && iv.To >= 290 {
			covered = true
		}
	}
	if !covered {
		t.Errorf("embedded poly-A not covered: %v", ivs)
	}
}

func TestDustShortSequence(t *testing.T) {
	if ivs := DustMask(nucSeq("ACGT"), DefaultDust()); ivs != nil {
		t.Errorf("4-base sequence masked: %v", ivs)
	}
	// Short but maskable.
	ivs := DustMask(nucSeq(strings.Repeat("A", 40)), DefaultDust())
	if TotalMasked(ivs) == 0 {
		t.Error("40-base poly-A not masked")
	}
}

func TestSegMasksHomopolymer(t *testing.T) {
	ivs := SegMask(protSeq(strings.Repeat("Q", 50)), DefaultSeg())
	if TotalMasked(ivs) < 40 {
		t.Errorf("poly-Q masked only %d of 50", TotalMasked(ivs))
	}
}

func TestSegLeavesDiverseProteinAlone(t *testing.T) {
	s := protSeq("MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF")
	ivs := SegMask(s, DefaultSeg())
	if n := TotalMasked(ivs); n > 10 {
		t.Errorf("diverse protein masked %d letters: %v", n, ivs)
	}
}

func TestMergeIntervals(t *testing.T) {
	got := mergeIntervals([]Interval{{10, 20}, {5, 12}, {30, 40}, {20, 25}})
	want := []Interval{{5, 25}, {30, 40}}
	if len(got) != len(want) {
		t.Fatalf("merged = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("merged[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if TotalMasked(got) != 30 {
		t.Errorf("total = %d", TotalMasked(got))
	}
}

func TestWordAllowed(t *testing.T) {
	flags := maskFlags(10, []Interval{{4, 6}})
	if !wordAllowed(flags, 0, 4) {
		t.Error("clean word rejected")
	}
	if wordAllowed(flags, 2, 4) {
		t.Error("word overlapping mask accepted")
	}
	if !wordAllowed(flags, 6, 4) {
		t.Error("word after mask rejected")
	}
	if !wordAllowed(nil, 0, 4) {
		t.Error("nil flags should allow everything")
	}
}

func TestFilterSuppressesLowComplexityHits(t *testing.T) {
	// A poly-A query against a database with a poly-A region: with
	// the filter off it "matches", with the filter on it must not.
	rng := util.NewRNG(33)
	host := randomDNA(rng, "subj", 2000)
	copy(host.Data[800:], strings.Repeat("A", 300))
	query := nucSeq(strings.Repeat("A", 200))
	query.ID = "polyA"

	unfiltered, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{host}}, DBInfo{},
		Params{Program: BlastN, Filter: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(unfiltered.Hits) == 0 {
		t.Fatal("unfiltered poly-A search found nothing (test setup broken)")
	}
	filtered, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{host}}, DBInfo{},
		Params{Program: BlastN, Filter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(filtered.Hits) != 0 {
		t.Errorf("filter on: still %d hits from a pure low-complexity query", len(filtered.Hits))
	}
	if filtered.Stats.MaskedLetters == 0 {
		t.Error("no letters reported masked")
	}
}

func TestFilterKeepsRealHits(t *testing.T) {
	// A normal query with a planted match must still be found with
	// filtering enabled.
	rng := util.NewRNG(34)
	query := randomDNA(rng, "query", 400)
	subject := randomDNA(rng, "subj", 3000)
	copy(subject.Data[1000:], query.Data[100:300])
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{},
		Params{Program: BlastN, Filter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("filter removed a legitimate high-complexity hit")
	}
}

func TestFilterProteinSearch(t *testing.T) {
	// Poly-Q query vs poly-Q subject: filtered out.
	q := protSeq(strings.Repeat("Q", 60))
	s := protSeq(strings.Repeat("Q", 80))
	s.ID = "subj"
	res, err := Search(q, &SliceSource{Seqs: []*seq.Sequence{s}}, DBInfo{},
		Params{Program: BlastP, Filter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Error("SEG filter did not suppress poly-Q self hit")
	}
	res2, err := Search(q, &SliceSource{Seqs: []*seq.Sequence{s}}, DBInfo{},
		Params{Program: BlastP, Filter: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Hits) == 0 {
		t.Error("unfiltered poly-Q search should hit")
	}
}

func TestMegablastFindsNearIdenticalMatch(t *testing.T) {
	rng := util.NewRNG(61)
	query := randomDNA(rng, "query", 500)
	subject := randomDNA(rng, "subj", 5000)
	// Plant a near-identical copy (2 mutations).
	cp := append([]byte(nil), query.Data...)
	cp[100] = flipBase(cp[100])
	cp[350] = flipBase(cp[350])
	copy(subject.Data[2000:], cp)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{},
		Params{Program: BlastN, Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("megablast missed a near-identical match")
	}
	hsp := res.Hits[0].HSPs[0]
	if hsp.QueryFrom > 5 || hsp.QueryTo < 495 {
		t.Errorf("extents [%d,%d) should cover ~[0,500)", hsp.QueryFrom, hsp.QueryTo)
	}
	if hsp.Identities < 490 {
		t.Errorf("identities = %d, want ~498", hsp.Identities)
	}
}

func flipBase(b byte) byte {
	switch b {
	case 'A':
		return 'C'
	case 'C':
		return 'G'
	case 'G':
		return 'T'
	default:
		return 'A'
	}
}

func TestMegablastLessSensitiveThanBlastn(t *testing.T) {
	// A diverged match (every ~20th base mutated) has no 28-mer exact
	// seeds, so megablast misses it while blastn (word 11) finds it.
	rng := util.NewRNG(62)
	query := randomDNA(rng, "query", 400)
	subject := randomDNA(rng, "subj", 4000)
	cp := append([]byte(nil), query.Data...)
	for i := 10; i < len(cp); i += 20 {
		cp[i] = flipBase(cp[i])
	}
	copy(subject.Data[1500:], cp)
	src := func() SubjectSource { return &SliceSource{Seqs: []*seq.Sequence{subject}} }
	normal, err := Search(query, src(), DBInfo{}, Params{Program: BlastN})
	if err != nil {
		t.Fatal(err)
	}
	if len(normal.Hits) == 0 {
		t.Fatal("blastn missed the diverged match (setup broken)")
	}
	mega, err := Search(query, src(), DBInfo{}, Params{Program: BlastN, Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(mega.Hits) != 0 {
		// Possible only if a 28-mer survived mutation spacing; the
		// fixed spacing of 20 < 28 guarantees none does.
		t.Errorf("megablast unexpectedly found the diverged match")
	}
}

func TestMegablastReverseStrand(t *testing.T) {
	rng := util.NewRNG(63)
	query := randomDNA(rng, "query", 300)
	subject := randomDNA(rng, "subj", 3000)
	rc := query.Subsequence(20, 280).ReverseComplement()
	copy(subject.Data[700:], rc.Data)
	res, err := Search(query, &SliceSource{Seqs: []*seq.Sequence{subject}}, DBInfo{},
		Params{Program: BlastN, Greedy: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) == 0 {
		t.Fatal("megablast missed reverse-strand match")
	}
	if res.Hits[0].HSPs[0].QueryFrame != -1 {
		t.Errorf("frame = %v, want -1", res.Hits[0].HSPs[0].QueryFrame)
	}
}

func TestMegablastValidation(t *testing.T) {
	p := Params{Program: BlastP, Greedy: true}.Defaults()
	if err := p.Validate(); err == nil {
		t.Error("greedy blastp accepted")
	}
	n := Params{Program: BlastN, Greedy: true}.Defaults()
	if n.WordSize != 28 {
		t.Errorf("megablast default word = %d, want 28", n.WordSize)
	}
	if err := n.Validate(); err != nil {
		t.Errorf("megablast defaults invalid: %v", err)
	}
}
