package blast

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"pario/internal/seq"
	"pario/internal/util"
)

// protLetters is the dense 20-letter amino acid alphabet for random
// test proteins.
var protLetters = []byte("ACDEFGHIKLMNPQRSTVWY")

func randomProtein(rng *util.RNG, id string, n int) *seq.Sequence {
	data := make([]byte, n)
	for i := range data {
		data[i] = protLetters[rng.Intn(len(protLetters))]
	}
	return &seq.Sequence{ID: id, Kind: seq.Protein, Data: data}
}

// buildNucDB synthesizes a nucleotide database with the query's
// fragments planted into several subjects (some twice, to exercise
// culling and tie-breaking in the ordered merge).
func buildNucDB(rng *util.RNG, query *seq.Sequence, n int) []*seq.Sequence {
	subjects := make([]*seq.Sequence, n)
	for i := range subjects {
		subjects[i] = randomDNA(rng, fmt.Sprintf("s%03d", i), 2000+rng.Intn(3000))
	}
	for i := 0; i < n; i += 3 {
		frag := query.Data[100:300]
		plant(subjects[i], frag, 200+((i*137)%1200))
		if i%2 == 0 {
			// A second, identical planting elsewhere in the same
			// subject produces equal-scoring HSPs whose relative order
			// the culler must keep stable.
			plant(subjects[i], frag, 1500)
		}
	}
	for i := 1; i < n; i += 7 {
		rc := query.Subsequence(250, 450).ReverseComplement()
		plant(subjects[i], rc.Data, 600)
	}
	return subjects
}

// buildProtDB is buildNucDB for protein searches.
func buildProtDB(rng *util.RNG, query *seq.Sequence, n int) []*seq.Sequence {
	subjects := make([]*seq.Sequence, n)
	for i := range subjects {
		subjects[i] = randomProtein(rng, fmt.Sprintf("p%03d", i), 400+rng.Intn(400))
	}
	for i := 0; i < n; i += 2 {
		plant(subjects[i], query.Data[20:80], 50+((i*31)%200))
	}
	return subjects
}

// TestPipelineDeterminism is the golden-equality check of the parallel
// subject pipeline: at any thread count the full Result — hit order,
// HSP coordinates, scores, e-values, statistics — must be bit-
// identical to the sequential engine's. Run under -race this also
// vets the pipeline's synchronization.
func TestPipelineDeterminism(t *testing.T) {
	rng := util.NewRNG(777)
	nucQuery := randomDNA(rng, "query", 568)
	nucDB := buildNucDB(rng, nucQuery, 60)
	protQuery := randomProtein(rng, "pquery", 120)
	protDB := buildProtDB(rng, protQuery, 60)

	cases := []struct {
		name     string
		query    *seq.Sequence
		subjects []*seq.Sequence
		params   Params
	}{
		{"blastn", nucQuery, nucDB, Params{Program: BlastN}},
		{"megablast", nucQuery, nucDB, Params{Program: BlastN, Greedy: true}},
		{"blastn-filtered", nucQuery, nucDB, Params{Program: BlastN, Filter: true}},
		{"blastp", protQuery, protDB, Params{Program: BlastP}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := tc.params
			p.Threads = 1
			want, err := Search(tc.query, &SliceSource{Seqs: tc.subjects}, DBInfo{}, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(want.Hits) == 0 {
				t.Fatal("test DB produced no hits; determinism check is vacuous")
			}
			for _, threads := range []int{2, 3, 4, 8} {
				p.Threads = threads
				got, err := Search(tc.query, &SliceSource{Seqs: tc.subjects}, DBInfo{}, p)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Errorf("threads=%d: result differs from sequential engine\nseq hits=%d par hits=%d\nseq stats=%+v\npar stats=%+v",
						threads, len(want.Hits), len(got.Hits), want.Stats, got.Stats)
				}
			}
		})
	}
}

// failingSource errors after yielding its first n subjects.
type failingSource struct {
	seqs []*seq.Sequence
	n    int
	i    int
	err  error
}

func (f *failingSource) Next() (*seq.Sequence, error) {
	if f.i >= f.n {
		return nil, f.err
	}
	s := f.seqs[f.i]
	f.i++
	return s, nil
}

func TestPipelineSourceError(t *testing.T) {
	rng := util.NewRNG(778)
	query := randomDNA(rng, "query", 568)
	subjects := buildNucDB(rng, query, 20)
	wantErr := errors.New("disk on fire")
	_, err := Search(query, &failingSource{seqs: subjects, n: 10, err: wantErr},
		DBInfo{}, Params{Program: BlastN, Threads: 4})
	if !errors.Is(err, wantErr) {
		t.Fatalf("pipeline error = %v, want %v", err, wantErr)
	}
}

func TestPipelineKindMismatch(t *testing.T) {
	rng := util.NewRNG(779)
	query := randomDNA(rng, "query", 300)
	subjects := []*seq.Sequence{
		randomDNA(rng, "ok", 1000),
		randomProtein(rng, "oops", 200),
	}
	_, err := Search(query, &SliceSource{Seqs: subjects}, DBInfo{},
		Params{Program: BlastN, Threads: 4})
	if err == nil {
		t.Fatal("protein subject in a blastn pipeline search did not error")
	}
}

func TestPipelineEmptySource(t *testing.T) {
	rng := util.NewRNG(780)
	query := randomDNA(rng, "query", 300)
	res, err := Search(query, &SliceSource{}, DBInfo{},
		Params{Program: BlastN, Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("empty database produced %d hits", len(res.Hits))
	}
}

func TestPipelineErrorAfterEOFIsClean(t *testing.T) {
	// A source returning io.EOF immediately after valid subjects must
	// behave exactly like the sequential loop (no lost tail subjects).
	rng := util.NewRNG(781)
	query := randomDNA(rng, "query", 568)
	subjects := buildNucDB(rng, query, 7) // fewer subjects than shards
	p := Params{Program: BlastN, Threads: 8}
	got, err := Search(query, &SliceSource{Seqs: subjects}, DBInfo{}, p)
	if err != nil {
		t.Fatal(err)
	}
	p.Threads = 1
	want, err := Search(query, &SliceSource{Seqs: subjects}, DBInfo{}, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("more shards than subjects changed the result")
	}
	if got.Stats.DBSequences != int64(len(subjects)) {
		t.Fatalf("pipeline counted %d subjects, want %d", got.Stats.DBSequences, len(subjects))
	}
}
