package blast

import (
	"testing"

	"pario/internal/seq"
	"pario/internal/util"
)

// allocWorkload builds the BenchmarkSearchSubject workload at a size
// small enough for AllocsPerRun: one warmed searcher plus a subject
// carrying a planted match so seeding, extension and culling all run.
func allocWorkload(t *testing.T, packed bool) (*searcher, *seq.Sequence) {
	t.Helper()
	rng := util.NewRNG(100)
	query := randomDNA(rng, "q", 568)
	subject := randomDNA(rng, "s", 1<<16)
	plant(subject, query.Data[100:400], 5000)
	if packed {
		subject = packedCopies(t, []*seq.Sequence{subject})[0]
	}
	eng, err := newEngine(query, Params{Program: BlastN}.Defaults())
	if err != nil {
		t.Fatal(err)
	}
	sr := newSearcher(eng)
	// Warm the pools: views, codes, seed arena, diagonal cells, cull
	// buffers and DP rows all reach steady-state capacity here.
	for i := 0; i < 3; i++ {
		if hsps := sr.searchSubject(subject); len(hsps) == 0 {
			t.Fatal("planted match not found; workload is broken")
		}
	}
	return sr, subject
}

// TestSearchSubjectSteadyStateAllocs is the allocation-regression
// guard for the batched search path: once pools are warm, a full
// subject search may allocate at most twice per call (the copy-out of
// surviving HSPs plus slack for one pool growth). The pre-batching
// searcher ran ~31 allocs/op; a regression here means a pooled buffer
// went back to per-call make or a closure started escaping.
func TestSearchSubjectSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector inflates allocation counts")
	}
	for _, tc := range []struct {
		name   string
		packed bool
	}{
		{"letters", false},
		{"packed", true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sr, subject := allocWorkload(t, tc.packed)
			var got []rawHSP
			allocs := testing.AllocsPerRun(20, func() {
				got = sr.searchSubject(subject)
			})
			if len(got) == 0 {
				t.Fatal("planted match not found during measurement")
			}
			if allocs > 2 {
				t.Errorf("searchSubject steady state = %.1f allocs/op, budget is 2", allocs)
			}
		})
	}
}
