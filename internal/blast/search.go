package blast

import (
	"fmt"
	"io"
	"math"
	"sort"

	"pario/internal/align"
	"pario/internal/seq"
)

// HSP is a high-scoring segment pair: one local alignment between the
// query and a subject. Coordinates are 0-based half-open offsets into
// the original (untranslated) sequences' forward strands.
type HSP struct {
	Score    int
	BitScore float64
	EValue   float64

	QueryFrom, QueryTo     int
	SubjectFrom, SubjectTo int

	// QueryFrame/SubjectFrame are translation frames for translated
	// programs; +1/-1 mark strands for blastn; 0 means untranslated
	// forward.
	QueryFrame   seq.Frame
	SubjectFrame seq.Frame

	// Alignment is the traceback over the compared (possibly
	// translated) letter data; coordinates inside it are in
	// comparison space, not original space.
	Alignment *align.Alignment

	Identities int
	AlignLen   int
	Gaps       int
}

// Hit groups the HSPs found in one subject sequence, best first.
type Hit struct {
	SubjectID   string
	SubjectDesc string
	SubjectLen  int
	HSPs        []HSP
}

// BestEValue returns the e-value of the hit's best HSP.
func (h *Hit) BestEValue() float64 {
	if len(h.HSPs) == 0 {
		return math.Inf(1)
	}
	return h.HSPs[0].EValue
}

// SearchStats summarizes the work a search performed.
type SearchStats struct {
	DBSequences   int64
	DBLetters     int64
	SeedHits      int64
	UngappedExts  int64
	GappedExts    int64
	ReportedHSPs  int64
	EffSearchLen  int64
	Lambda, K, H  float64
	LengthAdjust  int
	RawScoreCut   int
	GapTriggerRaw int
	// MaskedLetters counts query letters hidden from seeding by the
	// low-complexity filter, summed over query views.
	MaskedLetters int64
	// ScannedBases counts subject letters streamed through the seeding
	// kernel (each query view x subject view scan counts the subject
	// once), the numerator of the search-side bases/sec rate.
	ScannedBases int64
	// PackedExts counts ungapped extensions served by the 2-bit packed
	// kernel instead of the byte kernel.
	PackedExts int64
}

// Result is the outcome of searching one query against a database.
type Result struct {
	Program  Program
	QueryID  string
	QueryLen int
	Hits     []Hit
	Stats    SearchStats
}

// SubjectSource streams database sequences; Next returns io.EOF after
// the last one.
type SubjectSource interface {
	Next() (*seq.Sequence, error)
}

// SliceSource adapts an in-memory sequence slice to SubjectSource.
type SliceSource struct {
	Seqs []*seq.Sequence
	i    int
}

// Next returns the next sequence or io.EOF.
func (s *SliceSource) Next() (*seq.Sequence, error) {
	if s.i >= len(s.Seqs) {
		return nil, io.EOF
	}
	sq := s.Seqs[s.i]
	s.i++
	return sq, nil
}

// DBInfo carries the database-wide totals needed for statistics. If
// the caller leaves it zero, Search falls back to per-stream counting
// (two-pass semantics are avoided by computing e-values at the end).
type DBInfo struct {
	Letters   int64
	Sequences int64
}

// Search runs a BLAST search of query against the subjects under p.
// DBInfo supplies database-wide totals for e-value statistics; when
// zero they are accumulated from the stream itself. With p.Threads >
// 1 the subject stream is searched by a parallel pipeline whose
// results are bit-identical to the sequential engine's.
func Search(query *seq.Sequence, subjects SubjectSource, info DBInfo, p Params) (*Result, error) {
	return SearchWithMetrics(query, subjects, info, p, nil)
}

// SearchWithMetrics is Search with a pipeline telemetry sink: when m
// is non-nil and p.Threads > 1, shard busy/idle time, decode stalls
// and merge-queue depth are published so a live scrape shows whether
// the search is compute- or I/O-bound.
func SearchWithMetrics(query *seq.Sequence, subjects SubjectSource, info DBInfo, p Params, m *PipeMetrics) (*Result, error) {
	p = p.Defaults()
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if query.Kind != p.Program.QueryKind() {
		return nil, fmt.Errorf("blast: %s expects a %s query, got %s",
			p.Program, p.Program.QueryKind(), query.Kind)
	}
	eng, err := newEngine(query, p)
	if err != nil {
		return nil, err
	}
	res := &Result{Program: p.Program, QueryID: query.ID, QueryLen: query.Len()}

	var raw []rawHit
	var dbLetters, dbSeqs int64
	if threads := p.threadCount(); threads > 1 {
		raw, dbLetters, dbSeqs, err = eng.runPipeline(subjects, threads, m)
		if err != nil {
			return nil, err
		}
	} else {
		sr := newSearcher(eng)
		for {
			subj, err := subjects.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				return nil, err
			}
			if err := eng.checkSubjectKind(subj); err != nil {
				return nil, err
			}
			dbLetters += int64(subj.Len())
			dbSeqs++
			hsps := sr.searchSubject(subj)
			if len(hsps) > 0 {
				raw = append(raw, rawHit{subject: subj, hsps: hsps})
			}
		}
		eng.stats.addCounts(sr.stats)
	}
	if info.Letters == 0 {
		info.Letters = dbLetters
	}
	if info.Sequences == 0 {
		info.Sequences = dbSeqs
	}
	res.Stats = eng.stats
	res.Stats.DBLetters = dbLetters
	res.Stats.DBSequences = dbSeqs
	eng.finalize(res, raw, info)
	return res, nil
}

// checkSubjectKind rejects subjects of the wrong sequence kind.
func (eng *engine) checkSubjectKind(subj *seq.Sequence) error {
	if subj.Kind != eng.p.Program.DBKind() {
		return fmt.Errorf("blast: %s expects a %s database, got %s in %s",
			eng.p.Program, eng.p.Program.DBKind(), subj.Kind, subj.ID)
	}
	return nil
}

// addCounts folds another stats block's per-subject work counters in.
// Only the counters the search loop accumulates move; the query-wide
// fields (Karlin parameters, masking, cutoffs) stay put.
func (s *SearchStats) addCounts(o SearchStats) {
	s.SeedHits += o.SeedHits
	s.UngappedExts += o.UngappedExts
	s.GappedExts += o.GappedExts
	s.ScannedBases += o.ScannedBases
	s.PackedExts += o.PackedExts
}

type rawHit struct {
	subject *seq.Sequence
	hsps    []rawHSP
}

// rawHSP is an HSP before statistics: comparison-space coordinates.
type rawHSP struct {
	score                  int
	qFrom, qTo, sFrom, sTo int // comparison space
	qFrame, sFrame         seq.Frame
	alignment              *align.Alignment
}

// engine holds per-query immutable search state.
type engine struct {
	p     Params
	stats SearchStats

	// Comparison-space query views: for blastn, the forward and
	// reverse-complement strands; for blastx/tblastx, six frames; for
	// blastp/tblastn, the query itself.
	views []queryView

	gapTriggerRaw int
	kpGap         KarlinParams
	freqs         []float64

	// megablast mode
	greedy      align.GreedyScheme
	greedyScale int // divide greedy scores by this to match the scheme's units

	// Packed-kernel mode (blastn under a uniform match/mismatch scheme,
	// non-greedy): subjects that arrive 2-bit packed are seeded and
	// ungapped-extended without ever unpacking, 32 bases per word op.
	packedOK    bool
	nucMatch    int
	nucMismatch int
}

// queryView is one comparison-space rendering of the query.
type queryView struct {
	frame  seq.Frame
	codes  []byte
	packed []byte // 2-bit packed codes, built only in packed-kernel mode
	lookup interface {
		scan(subject []byte, sink seedSink)
	}
	origLen int // original query length (for coordinate mapping)
}

func newEngine(query *seq.Sequence, p Params) (*engine, error) {
	eng := &engine{p: p}
	if p.Program.comparisonIsProtein() {
		eng.freqs = RobinsonFreqs
	} else {
		eng.freqs = UniformNucFreqs
	}
	kpU, err := ComputeUngappedParams(p.Scheme, eng.freqs)
	if err != nil {
		return nil, err
	}
	eng.kpGap, err = GappedParams(p.Scheme, eng.freqs)
	if err != nil {
		return nil, err
	}
	eng.stats.Lambda, eng.stats.K, eng.stats.H = eng.kpGap.Lambda, eng.kpGap.K, eng.kpGap.H
	eng.gapTriggerRaw = int(math.Ceil((p.GapTriggerBits*math.Ln2 + math.Log(kpU.K)) / kpU.Lambda))
	if eng.gapTriggerRaw < 1 {
		eng.gapTriggerRaw = 1
	}
	eng.stats.GapTriggerRaw = eng.gapTriggerRaw
	if p.Greedy {
		match := p.Scheme.Table[0][0]
		mismatch := p.Scheme.Table[0][1]
		eng.greedy = align.NewGreedyScheme(match, mismatch)
		eng.greedyScale = eng.greedy.Match / match
	} else if p.Program == BlastN {
		if m, mm, ok := align.UniformNucScheme(p.Scheme); ok {
			eng.packedOK, eng.nucMatch, eng.nucMismatch = true, m, mm
		}
	}

	addNucView := func(s *seq.Sequence, frame seq.Frame) {
		codes := s.Codes()
		var masked []bool
		if p.Filter {
			ivs := DustMask(s, p.Dust)
			masked = maskFlags(len(codes), ivs)
			eng.stats.MaskedLetters += int64(TotalMasked(ivs))
		}
		var packed []byte
		if eng.packedOK {
			packed = seq.PackCodes(codes)
		}
		eng.views = append(eng.views, queryView{
			frame:   frame,
			codes:   codes,
			packed:  packed,
			lookup:  buildNucLookup(codes, p.WordSize, masked),
			origLen: query.Len(),
		})
	}
	addProtView := func(s *seq.Sequence, frame seq.Frame) {
		codes := s.Codes()
		var masked []bool
		if p.Filter {
			ivs := SegMask(s, p.Seg)
			masked = maskFlags(len(codes), ivs)
			eng.stats.MaskedLetters += int64(TotalMasked(ivs))
		}
		eng.views = append(eng.views, queryView{
			frame:   frame,
			codes:   codes,
			lookup:  buildProtLookup(codes, p.WordSize, p.Threshold, seq.NumAA, p.Scheme, masked),
			origLen: query.Len(),
		})
	}

	switch p.Program {
	case BlastN:
		addNucView(query, 1)
		if p.BothStrands {
			addNucView(query.ReverseComplement(), -1)
		}
	case BlastP, TBlastN:
		addProtView(query, 0)
	case BlastX, TBlastX:
		for _, f := range seq.Frames {
			addProtView(seq.Translate(query, f), f)
		}
	}
	return eng, nil
}

// subjectView renders a subject into comparison space. In
// packed-kernel mode a blastn subject that arrived 2-bit packed
// carries only its packed payload; codes stay nil until a gapped
// extension demands letters.
type subjectView struct {
	frame   seq.Frame
	codes   []byte // dense codes; nil for a packed view until materialized
	packed  []byte // 2-bit packed codes (packed-kernel mode only)
	n       int    // comparison-space length in letters
	origLen int
}

// subjectViews renders subj into the searcher's pooled view buffer.
// The buffers it fills (svBuf, and codesBuf behind the codes of a
// non-translated view) are reused on the next call, so callers must
// finish with a subject's views before requesting the next subject's.
func (sr *searcher) subjectViews(subj *seq.Sequence) []subjectView {
	eng := sr.eng
	switch eng.p.Program {
	case BlastN, BlastP, BlastX:
		sv := subjectView{frame: frameFor(eng.p.Program, subj), n: subj.Len(), origLen: subj.Len()}
		if eng.packedOK {
			if packed, n := subj.Packed2Bit(); packed != nil {
				sv.packed, sv.n = packed, n
			}
		}
		if sv.packed == nil {
			sr.codesBuf = subj.AppendCodes(sr.codesBuf[:0])
			sv.codes = sr.codesBuf
			sv.n = len(sv.codes)
		}
		sr.svBuf = append(sr.svBuf[:0], sv)
		return sr.svBuf
	default: // TBlastN, TBlastX: translate the subject
		sr.svBuf = sr.svBuf[:0]
		for _, f := range seq.Frames {
			codes := seq.Translate(subj, f).Codes()
			sr.svBuf = append(sr.svBuf, subjectView{frame: f, codes: codes, n: len(codes), origLen: subj.Len()})
		}
		return sr.svBuf
	}
}

func frameFor(p Program, subj *seq.Sequence) seq.Frame {
	if p == BlastN {
		return 1
	}
	return 0
}

// diagCell tracks per-diagonal progress: the end of the last
// extension (to suppress redundant seeds) and the last seed position
// (for the two-hit rule). The epoch stamp replaces reallocating and
// zeroing the diagonal array for every subject: a cell whose epoch
// differs from the searcher's current epoch reads as zero.
type diagCell struct {
	epoch      uint32
	lastExtEnd int32 // subject offset up to which the diagonal is covered
	lastSeed   int32 // subject offset of the previous unextended seed + 1 (0 = none)
}

// seedPos is one batched seed match awaiting extension.
type seedPos struct {
	q, s int32
}

// seedBatch is the seed arena capacity: large enough that a typical
// pair flushes once, small enough to stay cache-resident (4 KB).
const seedBatch = 512

// searcher holds the per-shard mutable state of a search: private
// work counters, the pooled diagonal array, the batched seed arena,
// the extension workspace, and the scratch HSP buffers. The engine it
// points at is immutable after construction, so any number of
// searchers may run concurrently over it; each pipeline shard owns
// one, and their stats are folded together at finalize. All scratch is
// reused subject to subject, so steady-state searching allocates only
// the per-subject result copy.
type searcher struct {
	eng   *engine
	stats SearchStats // per-subject work counters only

	cells []diagCell
	epoch uint32

	// Current pair context, so handleSeed is a method instead of a
	// fresh closure per subject view.
	q, s           []byte
	qp, sp         []byte // packed forms (packed-kernel mode)
	sLen           int    // subject length in letters
	packed         bool   // this pair runs the packed ungapped kernel
	sv             *subjectView
	qFrame, sFrame seq.Frame
	offset         int // diagonal index = spos - qpos + len(q)
	twoHit         bool

	seeds    []seedPos // batched seeds, extended in flushSeeds
	pairHSPs []rawHSP  // reused across pairs
	subjHSPs []rawHSP  // survivors accumulated across a subject's pairs
	svBuf    []subjectView
	codesBuf []byte // pooled subject codes (AppendCodes / lazy unpack)
	cullKept []rawHSP
	cullIdx  []int32
	sorter   rawHSPSorter
	ws       align.Workspace
}

func newSearcher(eng *engine) *searcher {
	return &searcher{
		eng:    eng,
		twoHit: eng.p.TwoHitWindow > 0,
		seeds:  make([]seedPos, 0, seedBatch),
	}
}

// searchSubject runs the seeded search of every query view against
// every subject view and returns comparison-space HSPs. The returned
// slice is freshly allocated (searcher scratch is reused on the next
// subject); it is the single steady-state allocation of a search.
func (sr *searcher) searchSubject(subj *seq.Sequence) []rawHSP {
	sr.subjHSPs = sr.subjHSPs[:0]
	svs := sr.subjectViews(subj)
	for si := range svs {
		sv := &svs[si]
		for vi := range sr.eng.views {
			qv := &sr.eng.views[vi]
			sr.subjHSPs = append(sr.subjHSPs, sr.searchPair(qv, sv)...)
		}
	}
	if len(sr.subjHSPs) == 0 {
		return nil
	}
	out := make([]rawHSP, len(sr.subjHSPs))
	copy(out, sr.subjHSPs)
	return out
}

// beginPair resets the searcher for one query-view x subject-view
// scan: bump the diagonal epoch (lazily zeroing cells), grow the pool
// if this pair has more diagonals than any before, reset the HSP
// scratch.
func (sr *searcher) beginPair(qv *queryView, sv *subjectView) {
	sr.q, sr.s = qv.codes, sv.codes
	sr.qp, sr.sp = qv.packed, sv.packed
	sr.sLen = sv.n
	sr.sv = sv
	sr.packed = qv.packed != nil && sv.packed != nil
	sr.qFrame, sr.sFrame = qv.frame, sv.frame
	sr.offset = len(sr.q)
	if n := len(sr.q) + sr.sLen; n > len(sr.cells) {
		sr.cells = make([]diagCell, n) // fresh cells carry epoch 0: stale
	}
	sr.epoch++
	if sr.epoch == 0 { // wrapped: hard-reset so stale stamps cannot match
		for i := range sr.cells {
			sr.cells[i] = diagCell{}
		}
		sr.epoch = 1
	}
	sr.seeds = sr.seeds[:0]
	sr.pairHSPs = sr.pairHSPs[:0]
}

// subjectBytes returns the current subject view's dense codes,
// materializing them from the packed payload on first demand — the
// gapped stage and the traceback need letters; packed seeding and
// ungapped extension do not. The materialized codes are cached on the
// view so a later pair over the same subject reuses them.
func (sr *searcher) subjectBytes() []byte {
	if sr.s == nil {
		sr.codesBuf = seq.AppendUnpackedCodes(sr.codesBuf[:0], sr.sp, sr.sLen)
		sr.s = sr.codesBuf
		sr.sv.codes = sr.s
	}
	return sr.s
}

func (sr *searcher) searchPair(qv *queryView, sv *subjectView) []rawHSP {
	if len(qv.codes) < sr.eng.p.WordSize || sv.n < sr.eng.p.WordSize {
		return nil
	}
	sr.beginPair(qv, sv)
	if sr.packed {
		qv.lookup.(packedScanner).scanPacked(sr.sp, sr.sLen, sr)
	} else {
		qv.lookup.scan(sr.s, sr)
	}
	sr.flushSeeds()
	sr.stats.ScannedBases += int64(sr.sLen)
	if len(sr.pairHSPs) == 0 {
		return nil
	}
	return sr.cullPair()
}

// handleSeed receives one seed match from the lookup scan. Seeds are
// batched into the arena and extended in flushSeeds, so the scan's
// tight word loop and the extension kernels each run over dense
// same-kind work instead of interleaving; order is preserved, so the
// diagonal bookkeeping (and thus the output) is bit-identical to
// immediate dispatch.
func (sr *searcher) handleSeed(qpos, spos int) {
	if len(sr.seeds) == seedBatch {
		sr.flushSeeds()
	}
	sr.seeds = append(sr.seeds, seedPos{q: int32(qpos), s: int32(spos)})
}

// flushSeeds drains the seed arena through processSeed in arrival
// order.
func (sr *searcher) flushSeeds() {
	for _, sd := range sr.seeds {
		sr.processSeed(int(sd.q), int(sd.s))
	}
	sr.seeds = sr.seeds[:0]
}

// processSeed investigates one seed match: diagonal and two-hit
// gating, then ungapped (packed or byte kernel) and gapped extension.
func (sr *searcher) processSeed(qpos, spos int) {
	sr.stats.SeedHits++
	eng := sr.eng
	c := &sr.cells[spos-qpos+sr.offset]
	if c.epoch != sr.epoch {
		*c = diagCell{epoch: sr.epoch}
	}
	if int32(spos) < c.lastExtEnd {
		return // already inside an extension on this diagonal
	}
	if sr.twoHit {
		last := c.lastSeed
		c.lastSeed = int32(spos) + 1
		if last == 0 {
			return // first hit on this diagonal: remember and wait
		}
		gap := spos - int(last-1)
		if gap <= 0 || gap > eng.p.TwoHitWindow {
			return // overlapping or too far apart: keep waiting
		}
	}
	var gscore, qFrom, qTo, sFrom, sTo int
	if eng.p.Greedy {
		// Megablast: greedy gapped extension straight from the
		// seed midpoint (seeds are long exact matches, so the
		// midpoint pair is guaranteed aligned).
		sr.stats.GappedExts++
		q, s := sr.q, sr.s
		mid := eng.p.WordSize / 2
		raw, a0, a1, b0, b1 := align.GreedyExtendWS(&sr.ws, q, s, qpos+mid, spos+mid,
			eng.greedy, eng.p.XDropGapped*eng.greedyScale)
		gscore, qFrom, qTo, sFrom, sTo = raw/eng.greedyScale, a0, a1, b0, b1
		c.lastExtEnd = int32(sTo)
		if gscore < eng.gapTriggerRaw {
			return
		}
	} else {
		sr.stats.UngappedExts++
		var score, aTo, bTo int
		if sr.packed {
			sr.stats.PackedExts++
			score, _, aTo, _, bTo = align.PackedExtend(sr.qp, len(sr.q), sr.sp, sr.sLen,
				qpos, spos, eng.p.WordSize, eng.nucMatch, eng.nucMismatch, eng.p.XDropUngapped)
		} else {
			score, _, aTo, _, bTo = align.ExtendUngapped(sr.q, sr.s, qpos, spos, eng.p.WordSize, eng.p.Scheme, eng.p.XDropUngapped)
		}
		c.lastExtEnd = int32(bTo)
		if score < eng.gapTriggerRaw {
			return
		}
		sr.stats.GappedExts++
		// Anchor the gapped extension at the middle of the ungapped
		// HSP's diagonal run. The gapped DP needs letters, so a packed
		// subject materializes its codes here, once, on first trigger.
		q, s := sr.q, sr.subjectBytes()
		mid := (aTo - qpos) / 2
		ai := qpos + mid
		bi := spos + mid
		if ai >= len(q) || bi >= len(s) {
			ai, bi = qpos, spos
		}
		gscore, qFrom, qTo, sFrom, sTo = align.ExtendGappedWS(&sr.ws, q, s, ai, bi, eng.p.Scheme, eng.p.XDropGapped)
		if gscore < eng.gapTriggerRaw {
			return
		}
	}
	c.lastExtEnd = int32(sTo)
	sr.pairHSPs = append(sr.pairHSPs, rawHSP{
		score: gscore,
		qFrom: qFrom, qTo: qTo, sFrom: sFrom, sTo: sTo,
		qFrame: sr.qFrame, sFrame: sr.sFrame,
	})
}

// rawHSPSorter sorts a rawHSP slice score-descending through a pooled
// sort.Interface (sort.Slice allocates its closure; sort.Sort on a
// pointer-to-field does not).
type rawHSPSorter struct {
	hsps []rawHSP
}

func (s *rawHSPSorter) Len() int           { return len(s.hsps) }
func (s *rawHSPSorter) Less(i, j int) bool { return s.hsps[i].score > s.hsps[j].score }
func (s *rawHSPSorter) Swap(i, j int)      { s.hsps[i], s.hsps[j] = s.hsps[j], s.hsps[i] }

// cullPair is cullHSPs over the searcher's pooled buffers: same
// algorithm, no per-pair allocation. The returned slice aliases
// searcher scratch and is consumed (appended to subjHSPs) before the
// next pair reuses it.
func (sr *searcher) cullPair() []rawHSP {
	hsps := sr.pairHSPs
	if len(hsps) <= 1 {
		return hsps
	}
	sr.sorter.hsps = hsps
	sort.Sort(&sr.sorter)
	if cap(sr.cullKept) < len(hsps) {
		sr.cullKept = make([]rawHSP, 0, cap(hsps))
		sr.cullIdx = make([]int32, 0, cap(hsps))
	}
	kept, idx := cullInto(hsps, sr.cullKept[:0], sr.cullIdx[:0])
	sr.cullKept, sr.cullIdx = kept, idx
	return kept
}

// cullHSPs removes HSPs contained inside a higher-scoring HSP in both
// coordinates (redundant extensions of the same alignment). Survivors
// keep score-descending order. The containment scan consults only
// kept HSPs whose qFrom does not exceed the candidate's — maintained
// sorted by qFrom, so the inner loop stops where containment becomes
// impossible instead of re-checking every survivor (the O(n^2) wall
// repetitive subjects used to hit).
func cullHSPs(hsps []rawHSP) []rawHSP {
	if len(hsps) <= 1 {
		return hsps
	}
	sort.Slice(hsps, func(i, j int) bool { return hsps[i].score > hsps[j].score })
	kept, _ := cullInto(hsps, make([]rawHSP, 0, len(hsps)), make([]int32, 0, len(hsps)))
	return kept
}

// cullInto runs the containment scan over score-sorted hsps, appending
// survivors to kept and maintaining byQFrom (kept indices ordered by
// qFrom) in the caller's buffers; both are returned with their final
// contents so pooled callers can retain the grown backing arrays.
func cullInto(hsps, kept []rawHSP, byQFrom []int32) ([]rawHSP, []int32) {
	for i := range hsps {
		h := &hsps[i]
		// Only kept HSPs with k.qFrom <= h.qFrom can contain h.
		ub := sort.Search(len(byQFrom), func(j int) bool {
			return kept[byQFrom[j]].qFrom > h.qFrom
		})
		contained := false
		for _, ki := range byQFrom[:ub] {
			k := &kept[ki]
			if h.qFrame == k.qFrame && h.sFrame == k.sFrame &&
				h.qFrom >= k.qFrom && h.qTo <= k.qTo &&
				h.sFrom >= k.sFrom && h.sTo <= k.sTo {
				contained = true
				break
			}
		}
		if contained {
			continue
		}
		ki := int32(len(kept))
		kept = append(kept, *h)
		byQFrom = append(byQFrom, 0)
		copy(byQFrom[ub+1:], byQFrom[ub:])
		byQFrom[ub] = ki
	}
	return kept, byQFrom
}

// finalize computes statistics, tracebacks and report ordering.
func (eng *engine) finalize(res *Result, raw []rawHit, info DBInfo) {
	p := eng.p
	kp := eng.kpGap
	// Translated comparisons run in residue space: a nucleotide query
	// or database contributes length/3 residues per frame to the
	// effective search space (NCBI's convention).
	queryLen := res.QueryLen
	if p.Program == BlastX || p.Program == TBlastX {
		queryLen /= 3
	}
	dbLetters := info.Letters
	if p.Program == TBlastN || p.Program == TBlastX {
		dbLetters /= 3
	}
	if queryLen < 1 {
		queryLen = 1
	}
	if dbLetters < 1 {
		dbLetters = 1
	}
	la := LengthAdjustment(kp, queryLen, dbLetters, info.Sequences)
	effQuery := int64(queryLen - la)
	if effQuery < 1 {
		effQuery = 1
	}
	effDB := dbLetters - int64(info.Sequences)*int64(la)
	if effDB < 1 {
		effDB = 1
	}
	res.Stats.LengthAdjust = la
	res.Stats.EffSearchLen = effQuery * effDB
	res.Stats.RawScoreCut = kp.RawCutoff(p.EValue, effQuery, effDB)

	for _, rh := range raw {
		hit := Hit{
			SubjectID:   rh.subject.ID,
			SubjectDesc: rh.subject.Desc,
			SubjectLen:  rh.subject.Len(),
		}
		for _, r := range rh.hsps {
			ev := kp.EValue(r.score, effQuery, effDB)
			if ev > p.EValue {
				continue
			}
			h := eng.traceback(r, rh.subject)
			h.BitScore = kp.BitScore(r.score)
			h.EValue = ev
			hit.HSPs = append(hit.HSPs, h)
		}
		if len(hit.HSPs) == 0 {
			continue
		}
		sort.Slice(hit.HSPs, func(i, j int) bool { return hit.HSPs[i].Score > hit.HSPs[j].Score })
		res.Hits = append(res.Hits, hit)
		res.Stats.ReportedHSPs += int64(len(hit.HSPs))
	}
	sort.Slice(res.Hits, func(i, j int) bool {
		ei, ej := res.Hits[i].BestEValue(), res.Hits[j].BestEValue()
		if ei != ej {
			return ei < ej
		}
		return res.Hits[i].SubjectID < res.Hits[j].SubjectID
	})
	if p.MaxTargetSeqs > 0 && len(res.Hits) > p.MaxTargetSeqs {
		res.Hits = res.Hits[:p.MaxTargetSeqs]
	}
}

// traceback recomputes the exact alignment of a raw HSP region and
// maps the coordinates back to the original sequences.
func (eng *engine) traceback(r rawHSP, subj *seq.Sequence) HSP {
	qCodes := eng.viewCodes(r.qFrame)
	sCodes := eng.subjectCodes(subj, r.sFrame)
	qRegion := qCodes[r.qFrom:r.qTo]
	sRegion := sCodes[r.sFrom:r.sTo]
	al := align.SmithWaterman(qRegion, sRegion, eng.p.Scheme)
	// Shift the alignment into view coordinates.
	al.AStart += r.qFrom
	al.AEnd += r.qFrom
	al.BStart += r.sFrom
	al.BEnd += r.sFrom
	matches, cols := al.Identity(qCodes, sCodes)
	h := HSP{
		Score:      r.score,
		QueryFrame: r.qFrame, SubjectFrame: r.sFrame,
		Alignment:  al,
		Identities: matches,
		AlignLen:   cols,
		Gaps:       al.Gaps(),
	}
	// The traceback alignment may score differently from the X-drop
	// estimate; prefer the exact score when it is higher.
	if al.Score > h.Score {
		h.Score = al.Score
	}
	qTrans := eng.p.Program == BlastX || eng.p.Program == TBlastX
	sTrans := eng.p.Program == TBlastN || eng.p.Program == TBlastX
	h.QueryFrom, h.QueryTo = mapToOriginal(al.AStart, al.AEnd, r.qFrame, eng.queryOrigLen(), qTrans)
	h.SubjectFrom, h.SubjectTo = mapToOriginal(al.BStart, al.BEnd, r.sFrame, subj.Len(), sTrans)
	return h
}

func (eng *engine) queryOrigLen() int { return eng.views[0].origLen }

func (eng *engine) viewCodes(frame seq.Frame) []byte {
	for i := range eng.views {
		if eng.views[i].frame == frame {
			return eng.views[i].codes
		}
	}
	return eng.views[0].codes
}

func (eng *engine) subjectCodes(subj *seq.Sequence, frame seq.Frame) []byte {
	switch eng.p.Program {
	case TBlastN, TBlastX:
		return seq.Translate(subj, frame).Codes()
	default:
		return subj.Codes()
	}
}

// mapToOriginal converts comparison-space extents [from,to) into
// forward-strand coordinates of the original sequence of length n.
// For untranslated views, frame +1 is the forward strand and frame -1
// the reverse complement; for translated views the protein positions
// map back through their codons.
func mapToOriginal(from, to int, frame seq.Frame, n int, translated bool) (int, int) {
	if frame == 0 {
		return from, to
	}
	if !translated {
		if frame == 1 {
			return from, to
		}
		// Reverse strand: position i of the RC maps to n-1-i forward.
		return n - to, n - from
	}
	if frame > 0 {
		start := seq.ProteinToNucPos(from, frame, n)
		end := seq.ProteinToNucPos(to-1, frame, n) + 3
		return start, end
	}
	// Negative translated frames: protein positions increase as
	// forward coordinates decrease.
	start := seq.ProteinToNucPos(to-1, frame, n)
	end := seq.ProteinToNucPos(from, frame, n) + 3
	return start, end
}
