package blast

import (
	"fmt"

	"pario/internal/align"
	"pario/internal/seq"
)

// Program selects one of the five classic BLAST comparison programs.
type Program int

const (
	// BlastN compares a nucleotide query against a nucleotide database.
	BlastN Program = iota
	// BlastP compares a protein query against a protein database.
	BlastP
	// BlastX compares a translated nucleotide query against a protein
	// database.
	BlastX
	// TBlastN compares a protein query against a translated nucleotide
	// database.
	TBlastN
	// TBlastX compares the six-frame translations of a nucleotide
	// query against the six-frame translations of a nucleotide
	// database.
	TBlastX
)

// String returns the conventional lower-case program name.
func (p Program) String() string {
	switch p {
	case BlastN:
		return "blastn"
	case BlastP:
		return "blastp"
	case BlastX:
		return "blastx"
	case TBlastN:
		return "tblastn"
	case TBlastX:
		return "tblastx"
	}
	return fmt.Sprintf("Program(%d)", int(p))
}

// ParseProgram maps a program name to its Program value.
func ParseProgram(name string) (Program, error) {
	switch name {
	case "blastn":
		return BlastN, nil
	case "blastp":
		return BlastP, nil
	case "blastx":
		return BlastX, nil
	case "tblastn":
		return TBlastN, nil
	case "tblastx":
		return TBlastX, nil
	}
	return 0, fmt.Errorf("blast: unknown program %q", name)
}

// QueryKind returns the sequence kind the program expects as query.
func (p Program) QueryKind() seq.Kind {
	switch p {
	case BlastP, TBlastN:
		return seq.Protein
	}
	return seq.Nucleotide
}

// DBKind returns the sequence kind the program expects in the
// database.
func (p Program) DBKind() seq.Kind {
	switch p {
	case BlastP, BlastX:
		return seq.Protein
	}
	return seq.Nucleotide
}

// comparisonIsProtein reports whether the inner comparison (after any
// translation) runs over the protein alphabet.
func (p Program) comparisonIsProtein() bool { return p != BlastN }

// Params collects every tunable of a BLAST search. Zero values are
// replaced by program defaults in Defaults.
type Params struct {
	Program Program
	Scheme  *align.Scheme

	// WordSize is the seed word length (11 for blastn, 3 for protein
	// comparisons).
	WordSize int
	// Threshold is the protein neighborhood word score threshold T:
	// a database word seeds a hit when it scores >= T against a query
	// word. Ignored by blastn, which seeds on exact words.
	Threshold int
	// TwoHitWindow is the diagonal window A within which two
	// non-overlapping seed hits are required before ungapped
	// extension (protein searches; 0 disables the two-hit rule).
	TwoHitWindow int

	// XDropUngapped, XDropGapped are raw-score drop-offs.
	XDropUngapped int
	XDropGapped   int

	// GapTriggerBits: ungapped HSPs whose bit score reaches this
	// value are handed to the gapped extension.
	GapTriggerBits float64

	// EValue is the report cutoff.
	EValue float64
	// MaxTargetSeqs caps the number of reported subject sequences
	// (0 = unlimited).
	MaxTargetSeqs int
	// BothStrands makes blastn search the reverse complement of the
	// query too.
	BothStrands bool

	// Threads is the number of search shards the subject pipeline
	// runs (<= 1 means the classic sequential loop). Results are
	// bit-identical at any thread count: subjects are independent and
	// the pipeline merges them back in stream order.
	Threads int

	// Filter enables low-complexity masking of the query before
	// seeding (DUST for nucleotide comparisons, SEG-style entropy
	// masking for protein comparisons) — NCBI blastall's -F option.
	Filter bool
	// Greedy enables megablast mode for blastn: long exact seed words
	// (default 28) and greedy gapped extension (Zhang et al. 2000)
	// instead of the X-drop DP — much faster on highly similar
	// sequences, less sensitive to diverged ones.
	Greedy bool
	// Dust/Seg tune the filters; zero values take the defaults.
	Dust DustParams
	Seg  SegParams
}

// Defaults returns p with unset fields replaced by the program's
// classic defaults.
func (p Params) Defaults() Params {
	prog := p.Program
	if p.Scheme == nil {
		if prog.comparisonIsProtein() {
			p.Scheme = align.DefaultProtein()
		} else {
			p.Scheme = align.DefaultNucleotide()
		}
	}
	if p.WordSize == 0 {
		switch {
		case prog.comparisonIsProtein():
			p.WordSize = 3
		case p.Greedy:
			p.WordSize = 28
		default:
			p.WordSize = 11
		}
	}
	if p.Threshold == 0 && prog.comparisonIsProtein() {
		p.Threshold = 11
	}
	if p.TwoHitWindow == 0 && prog.comparisonIsProtein() {
		p.TwoHitWindow = 40
	}
	if p.XDropUngapped == 0 {
		if prog.comparisonIsProtein() {
			p.XDropUngapped = 16 // ~7 bits at lambda 0.318
		} else {
			p.XDropUngapped = 20
		}
	}
	if p.XDropGapped == 0 {
		if prog.comparisonIsProtein() {
			p.XDropGapped = 38 // ~15 bits
		} else {
			p.XDropGapped = 30
		}
	}
	if p.GapTriggerBits == 0 {
		if prog.comparisonIsProtein() {
			p.GapTriggerBits = 22
		} else {
			p.GapTriggerBits = 25
		}
	}
	if p.EValue == 0 {
		p.EValue = 10
	}
	if prog == BlastN {
		p.BothStrands = true
	}
	if p.Dust.Window == 0 {
		p.Dust = DefaultDust()
	}
	if p.Seg.Window == 0 {
		p.Seg = DefaultSeg()
	}
	return p
}

// Validate rejects parameter combinations the engine cannot run.
func (p Params) Validate() error {
	if p.Scheme == nil {
		return fmt.Errorf("blast: nil scoring scheme")
	}
	if p.WordSize < 2 {
		return fmt.Errorf("blast: word size %d too small", p.WordSize)
	}
	if p.Program == BlastN && !p.Greedy && p.WordSize > 16 {
		return fmt.Errorf("blast: blastn word size %d exceeds 16", p.WordSize)
	}
	if p.Greedy && p.Program != BlastN {
		return fmt.Errorf("blast: greedy (megablast) mode is blastn-only")
	}
	if p.Program.comparisonIsProtein() && p.WordSize > 5 {
		return fmt.Errorf("blast: protein word size %d exceeds 5", p.WordSize)
	}
	if p.EValue <= 0 {
		return fmt.Errorf("blast: e-value cutoff must be positive")
	}
	return nil
}

// threadCount clamps Threads to at least one shard.
func (p Params) threadCount() int {
	if p.Threads < 1 {
		return 1
	}
	return p.Threads
}
