package blast

import (
	"reflect"
	"testing"

	"pario/internal/util"
)

// refNucLookup is the straightforward map-based word index the CSR
// tables replaced; the flat tables must reproduce its seed stream
// exactly — same (qpos, spos) pairs in the same order.
type refNucLookup struct {
	w       int
	mask    uint64
	buckets map[uint64][]int32
}

func buildRefNucLookup(query []byte, w int, masked []bool) *refNucLookup {
	lt := &refNucLookup{
		w:       w,
		mask:    (1 << (2 * uint(w))) - 1,
		buckets: make(map[uint64][]int32),
	}
	var word uint64
	for i := 0; i < len(query); i++ {
		word = (word<<2 | uint64(query[i])) & lt.mask
		if i >= w-1 && wordAllowed(masked, i-w+1, w) {
			lt.buckets[word] = append(lt.buckets[word], int32(i-w+1))
		}
	}
	return lt
}

func (lt *refNucLookup) scan(subject []byte, sink seedSink) {
	if len(subject) < lt.w || len(lt.buckets) == 0 {
		return
	}
	var word uint64
	for i := 0; i < lt.w-1; i++ {
		word = word<<2 | uint64(subject[i])
	}
	for i := lt.w - 1; i < len(subject); i++ {
		word = (word<<2 | uint64(subject[i])) & lt.mask
		if positions := lt.buckets[word]; positions != nil {
			spos := i - lt.w + 1
			for _, qpos := range positions {
				sink.handleSeed(int(qpos), spos)
			}
		}
	}
}

type seedPair struct{ qpos, spos int }

type seedRecorder struct{ seeds []seedPair }

func (r *seedRecorder) handleSeed(qpos, spos int) {
	r.seeds = append(r.seeds, seedPair{qpos, spos})
}

// denseDNA builds a dense-coded (0..3) random sequence.
func denseDNA(rng *util.RNG, n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(rng.Intn(4))
	}
	return data
}

// TestNucLookupMatchesReference drives both CSR forms (direct-indexed
// for small W, open-addressed hash for large W) against the reference
// map implementation over queries with planted repeats and optional
// masking, and requires identical seed streams.
func TestNucLookupMatchesReference(t *testing.T) {
	rng := util.NewRNG(4242)
	query := denseDNA(rng, 600)
	// Repeats: the same 40-mer at three sites, so buckets hold several
	// query positions and group ordering matters.
	copy(query[100:], query[20:60])
	copy(query[500:], query[20:60])
	subject := denseDNA(rng, 5000)
	// Plant query chunks so the scan actually fires.
	copy(subject[700:], query[10:200])
	copy(subject[3000:], query[400:580])

	masked := make([]bool, len(query))
	for i := 120; i < 180; i++ {
		masked[i] = true
	}

	for _, w := range []int{4, 8, 11, 16, 28} {
		for _, m := range [][]bool{nil, masked} {
			name := "unmasked"
			if m != nil {
				name = "masked"
			}
			lt := buildNucLookup(query, w, m)
			wantDirect := 2*w <= nucDirectBits
			if (lt.starts != nil) != wantDirect {
				t.Errorf("w=%d: direct form = %v, want %v", w, lt.starts != nil, wantDirect)
			}
			ref := buildRefNucLookup(query, w, m)
			var got, want seedRecorder
			lt.scan(subject, &got)
			ref.scan(subject, &want)
			if len(want.seeds) == 0 {
				t.Fatalf("w=%d %s: reference found no seeds; test is vacuous", w, name)
			}
			if !reflect.DeepEqual(got.seeds, want.seeds) {
				t.Errorf("w=%d %s: CSR seed stream differs from reference (%d vs %d seeds)",
					w, name, len(got.seeds), len(want.seeds))
			}
		}
	}
}

// TestNucLookupHashNoFalseHits checks the open-addressed form rejects
// absent words even when their slots collide with present ones.
func TestNucLookupHashNoFalseHits(t *testing.T) {
	rng := util.NewRNG(4243)
	query := denseDNA(rng, 64)
	lt := buildNucLookup(query, 28, nil)
	if lt.keys == nil {
		t.Fatal("w=28 should build the hash form")
	}
	ref := buildRefNucLookup(query, 28, nil)
	subject := denseDNA(rng, 20000)
	var got, want seedRecorder
	lt.scan(subject, &got)
	ref.scan(subject, &want)
	if !reflect.DeepEqual(got.seeds, want.seeds) {
		t.Errorf("hash form differs from reference on random subject: %d vs %d seeds",
			len(got.seeds), len(want.seeds))
	}
}

// TestNucLookupEmptyQuery covers the degenerate builds.
func TestNucLookupEmptyQuery(t *testing.T) {
	var rec seedRecorder
	for _, w := range []int{11, 28} {
		lt := buildNucLookup(nil, w, nil)
		lt.scan(make([]byte, 100), &rec)
		lt = buildNucLookup(make([]byte, w-1), w, nil)
		lt.scan(make([]byte, 100), &rec)
		// Fully masked query: zero indexed words.
		q := make([]byte, 2*w)
		masked := make([]bool, len(q))
		for i := range masked {
			masked[i] = true
		}
		lt = buildNucLookup(q, w, masked)
		lt.scan(make([]byte, 100), &rec)
	}
	if len(rec.seeds) != 0 {
		t.Fatalf("degenerate lookups produced %d seeds", len(rec.seeds))
	}
}
