package blast

import (
	"math"
	"sort"

	"pario/internal/seq"
)

// Low-complexity filtering. NCBI BLAST masks low-complexity query
// regions before seeding (DUST for nucleotide queries, SEG for
// protein queries) so that poly-A runs, microsatellites and biased
// composition segments do not flood the search with spurious hits.
// This file implements a DUST-style triplet-complexity filter and a
// SEG-style sliding-window entropy filter, plus the interval algebra
// used to apply them to the seed lookup tables.

// Interval is a half-open masked region [From, To).
type Interval struct {
	From, To int
}

// mergeIntervals sorts and coalesces overlapping or adjacent
// intervals.
func mergeIntervals(in []Interval) []Interval {
	if len(in) <= 1 {
		return in
	}
	sort.Slice(in, func(i, j int) bool { return in[i].From < in[j].From })
	out := in[:1]
	for _, iv := range in[1:] {
		last := &out[len(out)-1]
		if iv.From <= last.To {
			if iv.To > last.To {
				last.To = iv.To
			}
			continue
		}
		out = append(out, iv)
	}
	return out
}

// TotalMasked sums the lengths of a merged interval set.
func TotalMasked(ivs []Interval) int {
	n := 0
	for _, iv := range ivs {
		n += iv.To - iv.From
	}
	return n
}

// DustParams tune the nucleotide low-complexity filter.
type DustParams struct {
	// Window is the scan window length (DUST default 64).
	Window int
	// Threshold is the triplet-complexity score above which a window
	// is masked (DUST default 2.0).
	Threshold float64
}

// DefaultDust returns the classic DUST parameters.
func DefaultDust() DustParams { return DustParams{Window: 64, Threshold: 2.0} }

// DustMask scans a nucleotide sequence and returns merged intervals
// of low-complexity regions. The score of a window is
// sum_t c_t(c_t-1)/2 / (T-1), where c_t counts each of the 64
// possible triplets among the window's T triplets — high when few
// distinct triplets dominate (poly-X runs, short tandem repeats).
func DustMask(s *seq.Sequence, p DustParams) []Interval {
	if p.Window <= 3 {
		p = DefaultDust()
	}
	codes := s.Codes()
	n := len(codes)
	if n < p.Window {
		// Short sequences: single-window scan if at least 4 bases.
		if n < 8 {
			return nil
		}
		p.Window = n
	}
	var out []Interval
	var counts [64]int
	step := p.Window / 2
	if step < 1 {
		step = 1
	}
	for start := 0; start+p.Window <= n; start += step {
		for i := range counts {
			counts[i] = 0
		}
		t := 0
		for i := start; i+2 < start+p.Window; i++ {
			tri := int(codes[i])<<4 | int(codes[i+1])<<2 | int(codes[i+2])
			counts[tri]++
			t++
		}
		if t < 2 {
			continue
		}
		var score float64
		for _, c := range counts {
			score += float64(c*(c-1)) / 2
		}
		score /= float64(t - 1)
		if score > p.Threshold {
			out = append(out, Interval{From: start, To: start + p.Window})
		}
	}
	return mergeIntervals(out)
}

// SegParams tune the protein low-complexity filter.
type SegParams struct {
	// Window is the sliding window length (SEG default 12).
	Window int
	// MaxEntropy masks windows whose Shannon entropy (bits) is at or
	// below this value (SEG's K1 trigger is ~2.2 bits for window 12).
	MaxEntropy float64
}

// DefaultSeg returns SEG-like defaults.
func DefaultSeg() SegParams { return SegParams{Window: 12, MaxEntropy: 2.2} }

// SegMask scans a protein sequence and returns merged intervals whose
// residue composition has entropy at or below the threshold
// (homopolymeric and biased-composition segments).
func SegMask(s *seq.Sequence, p SegParams) []Interval {
	if p.Window <= 1 {
		p = DefaultSeg()
	}
	codes := s.Codes()
	n := len(codes)
	if n < p.Window {
		return nil
	}
	var out []Interval
	counts := make([]int, seq.NumAA)
	// Initialize the first window.
	for i := 0; i < p.Window; i++ {
		counts[codes[i]]++
	}
	entropy := func() float64 {
		var h float64
		for _, c := range counts {
			if c == 0 {
				continue
			}
			f := float64(c) / float64(p.Window)
			h -= f * math.Log2(f)
		}
		return h
	}
	for start := 0; ; start++ {
		if entropy() <= p.MaxEntropy {
			out = append(out, Interval{From: start, To: start + p.Window})
		}
		if start+p.Window >= n {
			break
		}
		counts[codes[start]]--
		counts[codes[start+p.Window]]++
	}
	return mergeIntervals(out)
}

// maskFlags converts merged intervals into a per-position bitmap.
func maskFlags(n int, ivs []Interval) []bool {
	if len(ivs) == 0 {
		return nil
	}
	flags := make([]bool, n)
	for _, iv := range ivs {
		from, to := iv.From, iv.To
		if from < 0 {
			from = 0
		}
		if to > n {
			to = n
		}
		for i := from; i < to; i++ {
			flags[i] = true
		}
	}
	return flags
}

// wordAllowed reports whether the word starting at pos with length w
// avoids every masked position.
func wordAllowed(flags []bool, pos, w int) bool {
	if flags == nil {
		return true
	}
	for i := pos; i < pos+w; i++ {
		if flags[i] {
			return false
		}
	}
	return true
}
