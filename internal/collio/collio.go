// Package collio implements collective two-phase reads over any
// chio.FileSystem: the multi-client analogue of the vectored read
// path. N workers scanning neighbouring database fragments each ask
// for their own blocks; independently those reads cost one round of
// server RPCs apiece, even when the ranges overlap or abut. This
// layer runs the two phases of the classic collective-I/O protocol
// instead: a short registration phase in which concurrent readers of
// one file enroll their ranges in the open "round" (the readahead
// prefetcher announces its planned window through chio.RangeHinter,
// letting the round close as soon as the expected fetches have
// enrolled), then an exchange phase in which the round's ranges are
// sorted, overlapping and adjacent ones merged, the merged list
// fetched with one chio.ReadvAt — one list-I/O RPC per data server on
// the parallel-FS backends — and the bytes scattered back to every
// waiter. Reads are single-flight across workers: K workers touching
// the same hot stripe in a round cost one fetch.
//
// One FS instance must be shared by the workers whose reads should
// combine; per-worker wrappers (readahead caches, tracers) stack on
// top of it. Writes pass straight through to the backend.
package collio

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pario/internal/chio"
	"pario/internal/telemetry"
)

// DefaultWindow is how long a round collects ranges before fetching
// when nothing closes it early. It only delays reads that miss every
// cache above this layer, and it is the window in which neighbouring
// workers' ranges combine.
const DefaultWindow = 2 * time.Millisecond

// Option tunes a collective FS.
type Option func(*FS)

// WithWindow sets the round collection window. Zero still
// single-flights whatever registers while a fetch is being set up,
// but does not wait for stragglers.
func WithWindow(d time.Duration) Option {
	return func(fs *FS) {
		if d >= 0 {
			fs.ag.window = d
		}
	}
}

// WithMaxFanIn closes a round as soon as n waiters have enrolled,
// bounding both latency and per-round buffer size. Zero means no
// fan-in bound (rounds close on coverage or the window timer).
func WithMaxFanIn(n int) Option {
	return func(fs *FS) {
		if n >= 0 {
			fs.ag.maxFanIn = n
		}
	}
}

// WithTelemetry registers the layer's per-round instruments
// (pario_collio_*) with reg, so run reports can show the merge and
// dedup arithmetic next to the per-server op counts it reduces.
func WithTelemetry(reg *telemetry.Registry) Option {
	return func(fs *FS) {
		if reg == nil {
			return
		}
		fs.ag.rounds = reg.Counter("pario_collio_rounds_total",
			"Collective read rounds executed.")
		fs.ag.ranges = reg.Counter("pario_collio_ranges_total",
			"Byte ranges registered by waiters across all rounds.")
		fs.ag.merged = reg.Counter("pario_collio_merged_segments_total",
			"Merged segments actually fetched across all rounds.")
		fs.ag.dedup = reg.Counter("pario_collio_dedup_bytes_total",
			"Bytes served to waiters beyond bytes fetched (overlap dedup).")
		fs.ag.fanIn = reg.Histogram("pario_collio_round_fan_in",
			"Waiters served per round.")
		fs.ag.latency = reg.Histogram("pario_collio_round_seconds",
			"Round duration, registration phase through scatter.")
	}
}

// Stats is a point-in-time snapshot of the layer's counters.
type Stats struct {
	// Rounds is the number of collective rounds executed.
	Rounds int64
	// Ranges is the number of waiter ranges registered.
	Ranges int64
	// MergedSegments is the number of segments actually fetched; the
	// gap to Ranges is the merge win.
	MergedSegments int64
	// DedupBytes counts bytes served to waiters beyond bytes fetched —
	// the overlap that single-flighting deduplicated.
	DedupBytes int64
}

// FS wraps an inner chio.FileSystem with the collective read layer.
// Views bound to different contexts (WithContext) share one
// aggregator, as do all files opened through them.
type FS struct {
	inner chio.FileSystem // this view's backend (context-bound)
	ctx   context.Context // this view's context; Background for the root
	ag    *aggregator
}

// Wrap layers collective reads over inner. The rounds themselves run
// against inner as given (not against any context-bound view), so a
// cancelled reader abandons its round without aborting the fetch the
// other waiters share.
func Wrap(inner chio.FileSystem, opts ...Option) *FS {
	fs := &FS{
		inner: inner,
		ctx:   context.Background(),
		ag: &aggregator{
			inner:  inner,
			window: DefaultWindow,
			open:   make(map[string]*round),
			files:  make(map[string]chio.File),
		},
	}
	for _, o := range opts {
		if o != nil {
			o(fs)
		}
	}
	return fs
}

// Stats returns the layer's counters so far.
func (fs *FS) Stats() Stats {
	return Stats{
		Rounds:         fs.ag.nRounds.Load(),
		Ranges:         fs.ag.nRanges.Load(),
		MergedSegments: fs.ag.nMerged.Load(),
		DedupBytes:     fs.ag.nDedup.Load(),
	}
}

// BackendName implements chio.FileSystem.
func (fs *FS) BackendName() string { return fs.inner.BackendName() + "+coll" }

// Create implements chio.FileSystem; the aggregator's cached handle
// for the name is dropped (Create truncates).
func (fs *FS) Create(name string) (chio.File, error) {
	fs.ag.dropHandle(name)
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, inner: f, name: name, ctx: fs.ctx}, nil
}

// Open implements chio.FileSystem.
func (fs *FS) Open(name string) (chio.File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, inner: f, name: name, ctx: fs.ctx}, nil
}

// Stat implements chio.FileSystem.
func (fs *FS) Stat(name string) (chio.FileInfo, error) { return fs.inner.Stat(name) }

// Remove implements chio.FileSystem; the cached handle is dropped.
func (fs *FS) Remove(name string) error {
	fs.ag.dropHandle(name)
	return fs.inner.Remove(name)
}

// List implements chio.FileSystem.
func (fs *FS) List(prefix string) ([]chio.FileInfo, error) { return fs.inner.List(prefix) }

// WithContext implements chio.ContextBinder: the returned view shares
// this FS's aggregator — its reads still combine with every other
// view's — but a done context abandons waits and unbinds pass-through
// operations.
func (fs *FS) WithContext(ctx context.Context) chio.FileSystem {
	if ctx == nil {
		ctx = context.Background()
	}
	f2 := *fs
	f2.inner = chio.BindContext(fs.inner, ctx)
	f2.ctx = ctx
	return &f2
}

// waiter is one enrolled read range.
type waiter struct {
	off    int64
	length int64
}

// extent is one merged fetched range; data holds the served bytes
// (short of the requested length only at EOF).
type extent struct {
	off    int64
	length int64 // requested length; len(data) <= length
	data   []byte
}

// round is one collective read round on one file.
type round struct {
	name    string
	started time.Time

	waiters []waiter
	hinted  []chio.Seg

	closeOnce sync.Once
	closeNow  chan struct{} // ends the registration phase early
	done      chan struct{} // results published

	extents []extent
	err     error
}

// aggregator is the shared two-phase engine: at most one open round
// per file name collects ranges; its leader goroutine fetches and
// scatters.
type aggregator struct {
	inner    chio.FileSystem
	window   time.Duration
	maxFanIn int

	rounds, ranges, merged, dedup *telemetry.Counter
	fanIn, latency                *telemetry.Histogram
	nRounds, nRanges              atomic.Int64
	nMerged, nDedup               atomic.Int64

	mu    sync.Mutex
	open  map[string]*round
	files map[string]chio.File
}

// join enrolls a range in the file's open round, starting one (and
// its leader) if none is collecting.
func (ag *aggregator) join(name string, off, length int64) *round {
	ag.mu.Lock()
	r := ag.open[name]
	if r == nil {
		r = &round{
			name:     name,
			started:  time.Now(),
			closeNow: make(chan struct{}),
			done:     make(chan struct{}),
		}
		ag.open[name] = r
		go ag.lead(r)
	}
	r.waiters = append(r.waiters, waiter{off: off, length: length})
	full := ag.maxFanIn > 0 && len(r.waiters) >= ag.maxFanIn
	covered := len(r.hinted) > 0 && coveredLocked(r)
	ag.mu.Unlock()
	if full || covered {
		r.closeOnce.Do(func() { close(r.closeNow) })
	}
	return r
}

// hint records ranges a reader expects to request soon, opening a
// round if none is collecting so the expected fetches find one to
// combine in. A round whose hinted ranges are all enrolled closes
// immediately instead of waiting out the window.
func (ag *aggregator) hint(name string, segs []chio.Seg) {
	if len(segs) == 0 {
		return
	}
	ag.mu.Lock()
	r := ag.open[name]
	if r == nil {
		r = &round{
			name:     name,
			started:  time.Now(),
			closeNow: make(chan struct{}),
			done:     make(chan struct{}),
		}
		ag.open[name] = r
		go ag.lead(r)
	}
	r.hinted = append(r.hinted, segs...)
	ag.mu.Unlock()
}

// coveredLocked reports whether every hinted range is contained in
// the union of the enrolled ranges. Caller holds ag.mu.
func coveredLocked(r *round) bool {
	merged := mergeRanges(r.waiters)
	for _, h := range r.hinted {
		ok := false
		for _, e := range merged {
			if h.Off >= e.off && h.Off+h.Len <= e.off+e.length {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// mergeRanges sorts ranges by offset and merges overlapping and
// adjacent ones into maximal extents.
func mergeRanges(ws []waiter) []waiter {
	sorted := make([]waiter, 0, len(ws))
	for _, w := range ws {
		if w.length > 0 {
			sorted = append(sorted, w)
		}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].off < sorted[b].off })
	out := sorted[:0]
	for _, w := range sorted {
		if k := len(out); k > 0 && w.off <= out[k-1].off+out[k-1].length {
			if end := w.off + w.length; end > out[k-1].off+out[k-1].length {
				out[k-1].length = end - out[k-1].off
			}
		} else {
			out = append(out, w)
		}
	}
	return out
}

// lead runs one round: wait out the registration phase, snapshot,
// fetch the merged ranges once, publish.
func (ag *aggregator) lead(r *round) {
	t := time.NewTimer(ag.window)
	select {
	case <-t.C:
	case <-r.closeNow:
		t.Stop()
	}
	ag.mu.Lock()
	if ag.open[r.name] == r {
		delete(ag.open, r.name)
	}
	waiters := r.waiters
	ag.mu.Unlock()
	ag.execute(r, waiters)
	close(r.done)
}

// execute is the exchange phase: one vectored read for the round's
// merged ranges, results parked on the round for the waiters to copy
// out.
func (ag *aggregator) execute(r *round, waiters []waiter) {
	defer func() {
		if ag.latency != nil {
			ag.latency.ObserveDuration(time.Since(r.started))
		}
	}()
	ag.nRounds.Add(1)
	ag.nRanges.Add(int64(len(waiters)))
	if ag.rounds != nil {
		ag.rounds.Inc()
		ag.ranges.Add(int64(len(waiters)))
		ag.fanIn.Observe(float64(len(waiters)))
	}
	merged := mergeRanges(waiters)
	if len(merged) == 0 {
		return
	}
	var want, fetch int64
	for _, w := range waiters {
		want += w.length
	}
	for _, e := range merged {
		fetch += e.length
	}
	ag.nMerged.Add(int64(len(merged)))
	if ag.merged != nil {
		ag.merged.Add(int64(len(merged)))
	}
	if d := want - fetch; d > 0 {
		ag.nDedup.Add(d)
		if ag.dedup != nil {
			ag.dedup.Add(d)
		}
	}

	f, err := ag.handle(r.name)
	if err != nil {
		r.err = err
		return
	}
	segs := make([]chio.Seg, len(merged))
	for i, e := range merged {
		segs[i] = chio.Seg{Off: e.off, Len: e.length}
	}
	dst := make([]byte, fetch)
	lens, err := chio.ReadvAt(f, segs, dst)
	if err != nil {
		ag.dropHandle(r.name)
		r.err = err
		return
	}
	r.extents = make([]extent, len(merged))
	var base int64
	for i, e := range merged {
		r.extents[i] = extent{off: e.off, length: e.length, data: dst[base : base+lens[i]]}
		base += e.length
	}
}

// handle returns the aggregator's cached read handle for name,
// opening one on first use. Rounds share it; it is dropped on fetch
// errors and on Create/Remove of the name.
func (ag *aggregator) handle(name string) (chio.File, error) {
	ag.mu.Lock()
	f := ag.files[name]
	ag.mu.Unlock()
	if f != nil {
		return f, nil
	}
	opened, err := ag.inner.Open(name)
	if err != nil {
		return nil, err
	}
	ag.mu.Lock()
	if cur := ag.files[name]; cur != nil {
		ag.mu.Unlock()
		opened.Close()
		return cur, nil
	}
	ag.files[name] = opened
	ag.mu.Unlock()
	return opened, nil
}

func (ag *aggregator) dropHandle(name string) {
	ag.mu.Lock()
	f := ag.files[name]
	delete(ag.files, name)
	ag.mu.Unlock()
	if f != nil {
		f.Close()
	}
}

// copyOut serves one waiter's range from the round's extents,
// returning the byte count before EOF. Every enrolled range is
// contained in exactly one merged extent.
func (r *round) copyOut(p []byte, off int64) int {
	i := sort.Search(len(r.extents), func(i int) bool {
		return r.extents[i].off+r.extents[i].length > off
	})
	if i >= len(r.extents) || off < r.extents[i].off {
		return 0
	}
	e := r.extents[i]
	rel := off - e.off
	if rel >= int64(len(e.data)) {
		return 0
	}
	return copy(p, e.data[rel:])
}

// file is an open handle through the collective layer.
type file struct {
	fs    *FS
	inner chio.File
	name  string
	ctx   context.Context

	mu  sync.Mutex
	off int64
}

// Name implements chio.File.
func (f *file) Name() string { return f.name }

// ReadAt implements io.ReaderAt by enrolling the range in the file's
// collective round and copying its share of the round's fetch.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("collio: negative read offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	r := f.fs.ag.join(f.name, off, int64(len(p)))
	select {
	case <-r.done:
	case <-f.ctx.Done():
		// Abandon the round (it completes for the other waiters) and
		// report the caller's own cancellation.
		return 0, f.ctx.Err()
	}
	if r.err != nil {
		return 0, r.err
	}
	n := r.copyOut(p, off)
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// HintRanges implements chio.RangeHinter: the readahead layer above
// announces the block fetches it is about to issue, so the round can
// close as soon as they have enrolled.
func (f *file) HintRanges(segs []chio.Seg) { f.fs.ag.hint(f.name, segs) }

// WriteAt implements io.WriterAt, passing straight through. The layer
// holds no cache to invalidate; readers racing a write see either
// byte order, as they would against the bare backend.
func (f *file) WriteAt(p []byte, off int64) (int, error) { return f.inner.WriteAt(p, off) }

// Read implements io.Reader at the streaming position.
func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Write implements io.Writer at the streaming position.
func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek implements io.Seeker, delegating SeekEnd to the inner file.
func (f *file) Seek(offset int64, whence int) (int64, error) {
	if whence == io.SeekEnd {
		pos, err := f.inner.Seek(offset, io.SeekEnd)
		if err != nil {
			return 0, err
		}
		f.mu.Lock()
		f.off = pos
		f.mu.Unlock()
		return pos, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.off + offset
	default:
		return 0, fmt.Errorf("collio: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("collio: negative seek position")
	}
	f.off = next
	return next, nil
}

// Close closes the file's own inner handle. The aggregator's cached
// round handle is independent and stays usable for other readers.
func (f *file) Close() error { return f.inner.Close() }
