package collio

import (
	"bytes"
	"context"
	"io"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pario/internal/chio"
)

// countFS counts backend fetches: vecCalls is the number of vectored
// rounds the collective layer issued, readCalls the number of plain
// ReadAt calls that reached the backend.
type countFS struct {
	inner     chio.FileSystem
	vecCalls  atomic.Int64
	readCalls atomic.Int64
}

func (c *countFS) Create(name string) (chio.File, error) { return c.inner.Create(name) }
func (c *countFS) Open(name string) (chio.File, error) {
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &countFile{fs: c, File: f}, nil
}
func (c *countFS) Stat(name string) (chio.FileInfo, error) { return c.inner.Stat(name) }
func (c *countFS) Remove(name string) error                { return c.inner.Remove(name) }
func (c *countFS) List(p string) ([]chio.FileInfo, error)  { return c.inner.List(p) }
func (c *countFS) BackendName() string                     { return "count" }

type countFile struct {
	fs *countFS
	chio.File
}

func (f *countFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.readCalls.Add(1)
	return f.File.ReadAt(p, off)
}

func (f *countFile) ReadvAt(segs []chio.Seg, dst []byte) ([]int64, error) {
	f.fs.vecCalls.Add(1)
	return chio.ReadvAt(f.File, segs, dst)
}

func seedFile(t *testing.T, fs chio.FileSystem, name string, n int) []byte {
	t.Helper()
	payload := make([]byte, n)
	for i := range payload {
		payload[i] = byte(i*2654435761 + i>>6)
	}
	if err := chio.WriteFull(fs, name, payload); err != nil {
		t.Fatal(err)
	}
	return payload
}

// TestInterleavedWorkersCombine is the layer's contract: W workers
// reading adjacent interleaved slices of one file in lockstep cost one
// backend round per cycle, not one per worker, and every worker gets
// its exact bytes.
func TestInterleavedWorkersCombine(t *testing.T) {
	const (
		workers = 8
		slice   = 1024
		rounds  = 8
	)
	mem := chio.NewMemFS()
	payload := seedFile(t, mem, "db", workers*slice*rounds)
	cfs := &countFS{inner: mem}
	fs := Wrap(cfs, WithWindow(200*time.Millisecond), WithMaxFanIn(workers))

	files := make([]chio.File, workers)
	for w := range files {
		f, err := fs.Open("db")
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		files[w] = f
	}

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				off := int64(round*workers*slice + w*slice)
				buf := make([]byte, slice)
				n, err := files[w].ReadAt(buf, off)
				if err != nil || n != slice {
					errs[w] = err
					return
				}
				if !bytes.Equal(buf, payload[off:off+slice]) {
					t.Errorf("round %d worker %d: data mismatch", round, w)
				}
			}(w)
		}
		wg.Wait()
		for w, err := range errs {
			if err != nil {
				t.Fatalf("round %d worker %d: %v", round, w, err)
			}
		}
	}

	// One merged fetch per lockstep round; the fan-in cap makes the
	// count exact.
	if got := cfs.vecCalls.Load(); got != rounds {
		t.Errorf("backend rounds = %d, want %d", got, rounds)
	}
	if got := cfs.readCalls.Load(); got != 0 {
		t.Errorf("plain backend ReadAt calls = %d, want 0", got)
	}
	st := fs.Stats()
	if st.Rounds != rounds || st.Ranges != workers*rounds || st.MergedSegments != rounds {
		t.Errorf("stats = %+v, want %d rounds, %d ranges, %d merged segments",
			st, rounds, workers*rounds, rounds)
	}
	if st.DedupBytes != 0 {
		t.Errorf("dedup bytes = %d for disjoint ranges, want 0", st.DedupBytes)
	}
}

// TestIdenticalReadsSingleFlight: W workers reading the same range pay
// for it once; the other W-1 copies are dedup.
func TestIdenticalReadsSingleFlight(t *testing.T) {
	const workers = 8
	const size = 4096
	mem := chio.NewMemFS()
	payload := seedFile(t, mem, "hot", size)
	cfs := &countFS{inner: mem}
	fs := Wrap(cfs, WithWindow(200*time.Millisecond), WithMaxFanIn(workers))

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := fs.Open("hot")
			if err != nil {
				t.Error(err)
				return
			}
			defer f.Close()
			buf := make([]byte, size)
			if _, err := f.ReadAt(buf, 0); err != nil {
				t.Error(err)
				return
			}
			if !bytes.Equal(buf, payload) {
				t.Error("data mismatch")
			}
		}()
	}
	wg.Wait()
	if got := cfs.vecCalls.Load(); got != 1 {
		t.Errorf("backend rounds = %d, want 1 (single flight)", got)
	}
	st := fs.Stats()
	if want := int64((workers - 1) * size); st.DedupBytes != want {
		t.Errorf("dedup bytes = %d, want %d", st.DedupBytes, want)
	}
}

// TestHintClosesRoundEarly: with a window far longer than the test, a
// round whose hinted ranges are fully enrolled must close on coverage,
// not on the timer.
func TestHintClosesRoundEarly(t *testing.T) {
	mem := chio.NewMemFS()
	payload := seedFile(t, mem, "h", 8192)
	fs := Wrap(&countFS{inner: mem}, WithWindow(30*time.Second))
	f, err := fs.Open("h")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	f.(*file).HintRanges([]chio.Seg{{Off: 0, Len: 8192}})
	start := time.Now()
	buf := make([]byte, 8192)
	done := make(chan error, 1)
	go func() {
		_, err := f.ReadAt(buf, 0)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read did not complete: hint coverage failed to close the round")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("read took %v; coverage close should beat the 30s window", elapsed)
	}
	if !bytes.Equal(buf, payload) {
		t.Error("data mismatch")
	}
}

// TestEOFAndHoles: reads past EOF come back short with io.EOF, like
// any ReaderAt.
func TestEOFAndHoles(t *testing.T) {
	mem := chio.NewMemFS()
	payload := seedFile(t, mem, "e", 1000)
	fs := Wrap(&countFS{inner: mem}, WithWindow(time.Millisecond))
	f, err := fs.Open("e")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	buf := make([]byte, 600)
	n, err := f.ReadAt(buf, 700)
	if err != io.EOF {
		t.Fatalf("past-EOF read: err = %v, want io.EOF", err)
	}
	if n != 300 || !bytes.Equal(buf[:n], payload[700:]) {
		t.Fatalf("past-EOF read: n = %d, want 300 with matching bytes", n)
	}
	if n, err := f.ReadAt(buf, 5000); n != 0 || err != io.EOF {
		t.Fatalf("read at 5000: n=%d err=%v, want 0, io.EOF", n, err)
	}
}

// TestStreamingReadAndSeek: the io.Reader/io.Seeker surface rides the
// collective ReadAt path and still behaves like a plain file.
func TestStreamingReadAndSeek(t *testing.T) {
	mem := chio.NewMemFS()
	payload := seedFile(t, mem, "s", 5000)
	fs := Wrap(&countFS{inner: mem}, WithWindow(time.Millisecond))
	f, err := fs.Open("s")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	got, err := io.ReadAll(f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("streaming read mismatch")
	}
	if _, err := f.Seek(100, io.SeekStart); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 50)
	if _, err := io.ReadFull(f, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, payload[100:150]) {
		t.Fatal("post-seek read mismatch")
	}
}

// TestContextCancelAbandonsWait: a reader whose bound context dies
// stops waiting immediately; the round completes for everyone else.
func TestContextCancelAbandonsWait(t *testing.T) {
	mem := chio.NewMemFS()
	seedFile(t, mem, "c", 4096)
	fs := Wrap(&countFS{inner: mem}, WithWindow(300*time.Millisecond))

	ctx, cancel := context.WithCancel(context.Background())
	bound := fs.WithContext(ctx).(*FS)
	f, err := bound.Open("c")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	cancel()
	start := time.Now()
	if _, err := f.ReadAt(make([]byte, 64), 0); err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 150*time.Millisecond {
		t.Error("cancelled read waited for the round window")
	}

	// An unbound reader of the same file is unaffected.
	f2, err := fs.Open("c")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.ReadAt(make([]byte, 64), 0); err != nil {
		t.Fatalf("unbound read after peer cancel: %v", err)
	}
}

// TestCreateAndRemoveDropHandle: mutating a name through the layer
// invalidates the aggregator's cached read handle, so later rounds see
// the new contents.
func TestCreateAndRemoveDropHandle(t *testing.T) {
	mem := chio.NewMemFS()
	seedFile(t, mem, "m", 128)
	fs := Wrap(&countFS{inner: mem}, WithWindow(time.Millisecond))
	f, err := fs.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Rewrite through the layer, then read again: must see new bytes.
	if err := chio.WriteFull(fs, "m", []byte("NEW!")); err != nil {
		t.Fatal(err)
	}
	f2, err := fs.Open("m")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if string(buf) != "NEW!" {
		t.Fatalf("read %q after rewrite, want NEW!", buf)
	}
}
