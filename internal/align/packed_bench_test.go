package align

import (
	"testing"

	"pario/internal/seq"
	"pario/internal/util"
)

// BenchmarkPackedExtend compares the 2-bit packed ungapped kernel
// against the byte-at-a-time kernel it shadows, on match-dense input
// (identical sequences, so the extension sweeps the full length — the
// regime where 32-bases-per-XOR pays). Both sides SetBytes the letter
// count, so MB/s is directly bases/sec and the ratio is the kernel
// speedup.
func BenchmarkPackedExtend(b *testing.B) {
	rng := util.NewRNG(77)
	const n = 1 << 16
	codes := make([]byte, n)
	for i := range codes {
		codes[i] = byte(rng.Intn(4))
	}
	packed := seq.PackCodes(codes)
	const w, match, mismatch, xdrop = 11, 1, -3, 20
	s := NucleotideScheme(match, mismatch, 5, 2)

	b.Run("packed", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			_, _, aTo, _, _ := PackedExtend(packed, n, packed, n, 0, 0, w, match, mismatch, xdrop)
			if aTo != n {
				b.Fatalf("extension stopped at %d, want %d", aTo, n)
			}
		}
	})
	b.Run("bytes", func(b *testing.B) {
		b.ReportAllocs()
		b.SetBytes(n)
		for i := 0; i < b.N; i++ {
			_, _, aTo, _, _ := ExtendUngapped(codes, codes, 0, 0, w, s, xdrop)
			if aTo != n {
				b.Fatalf("extension stopped at %d, want %d", aTo, n)
			}
		}
	})
}
