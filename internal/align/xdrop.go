package align

// X-drop extensions: the scanning primitives of the BLAST engine.
// Ungapped extension stretches a seed hit along the diagonal; gapped
// extension runs a banded affine-gap DP whose band adapts so that
// cells scoring more than X below the best-so-far are dropped.

// ExtendUngapped extends a seed match at a[ai:ai+w] vs b[bi:bi+w]
// along the diagonal in both directions, stopping a direction when
// the running score falls more than xdrop below the best seen in that
// direction. It returns the best total score and the extents
// [aFrom,aTo) x [bFrom,bTo) achieving it.
func ExtendUngapped(a, b []byte, ai, bi, w int, s *Scheme, xdrop int) (score, aFrom, aTo, bFrom, bTo int) {
	seed := 0
	for k := 0; k < w; k++ {
		seed += s.Score(a[ai+k], b[bi+k])
	}
	bestRight, rightLen := 0, 0
	run, k := 0, 1
	for i, j := ai+w, bi+w; i < len(a) && j < len(b); i, j = i+1, j+1 {
		run += s.Score(a[i], b[j])
		if run > bestRight {
			bestRight, rightLen = run, k
		}
		if run < bestRight-xdrop {
			break
		}
		k++
	}
	bestLeft, leftLen := 0, 0
	run, k = 0, 1
	for i, j := ai-1, bi-1; i >= 0 && j >= 0; i, j = i-1, j-1 {
		run += s.Score(a[i], b[j])
		if run > bestLeft {
			bestLeft, leftLen = run, k
		}
		if run < bestLeft-xdrop {
			break
		}
		k++
	}
	score = seed + bestLeft + bestRight
	return score, ai - leftLen, ai + w + rightLen, bi - leftLen, bi + w + rightLen
}

// extendGappedOneSided runs the X-drop banded affine-gap DP extending
// rightward, aligning prefixes of a against prefixes of b starting
// from an implicit anchor just before a[0]/b[0]. It returns the best
// score achieved (>= 0; 0 means "extend nothing") and the number of
// letters of a and b consumed by the best-scoring cell.
func extendGappedOneSided(ws *Workspace, a, b []byte, s *Scheme, xdrop int) (best, aLen, bLen int) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, 0, 0
	}
	open := s.GapOpen + s.GapExtend
	ext := s.GapExtend

	// H[j] holds row i-1 while computing row i (overwritten in place,
	// left to right, keeping the previous diagonal in prevDiag).
	// E[j] is the best score ending in a gap in a (consuming b) at
	// column j of the current row.
	H, E := ws.dpRows(m + 1)
	for j := range H {
		H[j] = negInf
		E[j] = negInf
	}
	H[0] = 0
	for j := 1; j <= m; j++ {
		g := -(open + (j-1)*ext)
		if g < -xdrop {
			break
		}
		H[j] = g
		E[j] = g
	}

	// Row 0's live window: columns whose init value survived.
	lo, hi := 0, 1
	for j := 1; j <= m && H[j] != negInf; j++ {
		hi = j + 1
	}
	for i := 1; i <= n; i++ {
		prevDiag := negInf // H[i-1][j-1], maintained across j
		newLo, newHi := -1, -1
		f := negInf // best score ending in a gap in b at current column

		if lo == 0 {
			prevDiag = H[0]
			h0 := -(open + (i-1)*ext)
			if h0 >= best-xdrop {
				H[0] = h0
				newLo, newHi = 0, 1
			} else {
				H[0] = negInf
			}
		} else {
			prevDiag = H[lo-1]
			H[lo-1] = negInf // column left of window is dead for row i+1
			E[lo-1] = negInf
		}

		start := lo
		if start == 0 {
			start = 1
		}
		for j := start; j <= m; j++ {
			// Previous-row cells are only valid inside [lo, hi).
			upH := negInf
			if j < hi {
				upH = H[j]
			}
			// E from the current row's left neighbour (H[j-1] and
			// E[j-1] have already been updated for row i).
			eNew := negInf
			if E[j-1] != negInf {
				eNew = E[j-1] - ext
			}
			if H[j-1] != negInf && H[j-1]-open > eNew {
				eNew = H[j-1] - open
			}
			// F from the previous row, same column.
			fNew := negInf
			if f != negInf {
				fNew = f - ext
			}
			if upH != negInf && upH-open > fNew {
				fNew = upH - open
			}
			// Diagonal from the previous row.
			hNew := negInf
			if prevDiag != negInf {
				hNew = prevDiag + s.Score(a[i-1], b[j-1])
			}
			if eNew > hNew {
				hNew = eNew
			}
			if fNew > hNew {
				hNew = fNew
			}
			if j < hi {
				prevDiag = H[j]
			} else {
				prevDiag = negInf
			}
			if hNew < best-xdrop {
				hNew = negInf
			}
			if eNew < best-xdrop {
				eNew = negInf
			}
			H[j] = hNew
			E[j] = eNew
			f = fNew
			if hNew != negInf {
				if newLo == -1 {
					newLo = j
				}
				newHi = j + 1
				if hNew > best {
					best, aLen, bLen = hNew, i, j
				}
			}
			// Past the previous row's window only E can feed new
			// cells; once it has decayed below the cutoff nothing
			// further right can come alive.
			if j >= hi && eNew == negInf && hNew == negInf {
				break
			}
		}
		if newLo == -1 {
			break // every cell dropped: extension finished
		}
		lo, hi = newLo, newHi
	}
	return best, aLen, bLen
}

// ExtendGapped performs the two-sided gapped X-drop extension around
// the anchored letter pair (a[ai], b[bi]): leftward over the reversed
// prefixes and rightward over the suffixes. It returns the total best
// score and the extents [aFrom,aTo) x [bFrom,bTo).
func ExtendGapped(a, b []byte, ai, bi int, s *Scheme, xdrop int) (score, aFrom, aTo, bFrom, bTo int) {
	return ExtendGappedWS(nil, a, b, ai, bi, s, xdrop)
}

// ExtendGappedWS is ExtendGapped with caller-pooled scratch: the DP
// rows and the two prefix-reversal buffers come from ws, so repeated
// extensions allocate nothing once the workspace has warmed up. A nil
// ws behaves exactly like ExtendGapped.
func ExtendGappedWS(ws *Workspace, a, b []byte, ai, bi int, s *Scheme, xdrop int) (score, aFrom, aTo, bFrom, bTo int) {
	anchor := s.Score(a[ai], b[bi])
	rBest, rA, rB := extendGappedOneSided(ws, a[ai+1:], b[bi+1:], s, xdrop)
	lBest, lA, lB := extendGappedOneSided(ws, ws.reversed(a[:ai], 0), ws.reversed(b[:bi], 1), s, xdrop)
	score = anchor + rBest + lBest
	return score, ai - lA, ai + 1 + rA, bi - lB, bi + 1 + rB
}

func reverseBytes(p []byte) []byte {
	out := make([]byte, len(p))
	for i, c := range p {
		out[len(p)-1-i] = c
	}
	return out
}
