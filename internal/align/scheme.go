// Package align implements pairwise sequence alignment: scoring
// schemes (match/mismatch and substitution matrices such as BLOSUM62),
// Smith-Waterman local and Needleman-Wunsch global alignment with
// affine gap penalties, and the X-drop gapped extension used by the
// BLAST engine.
package align

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pario/internal/seq"
)

// Scheme is a complete scoring scheme: a substitution table over dense
// alphabet codes plus affine gap costs. Gap costs are positive; a gap
// of length L costs GapOpen + L*GapExtend.
type Scheme struct {
	Name      string
	Kind      seq.Kind
	Table     [][]int // Table[a][b] = substitution score
	GapOpen   int
	GapExtend int
}

// Score returns the substitution score of dense codes a vs b.
func (s *Scheme) Score(a, b byte) int { return s.Table[a][b] }

// GapCost returns the cost (positive) of a gap of length n.
func (s *Scheme) GapCost(n int) int {
	if n <= 0 {
		return 0
	}
	return s.GapOpen + n*s.GapExtend
}

// NucleotideScheme builds a match/mismatch scheme over the 2-bit DNA
// alphabet. match must be positive and mismatch negative. The BLAST
// default of the paper's era is match=1, mismatch=-3, gap open 5,
// gap extend 2.
func NucleotideScheme(match, mismatch, gapOpen, gapExtend int) *Scheme {
	if match <= 0 || mismatch >= 0 {
		panic(fmt.Sprintf("align: invalid nucleotide scores match=%d mismatch=%d", match, mismatch))
	}
	t := make([][]int, 4)
	for i := range t {
		t[i] = make([]int, 4)
		for j := range t[i] {
			if i == j {
				t[i][j] = match
			} else {
				t[i][j] = mismatch
			}
		}
	}
	return &Scheme{
		Name:      fmt.Sprintf("match%+d/mismatch%+d", match, mismatch),
		Kind:      seq.Nucleotide,
		Table:     t,
		GapOpen:   gapOpen,
		GapExtend: gapExtend,
	}
}

// DefaultNucleotide returns the classic blastn scheme: +1/-3, gap 5/2.
func DefaultNucleotide() *Scheme { return NucleotideScheme(1, -3, 5, 2) }

// Blosum62 returns the BLOSUM62 scheme with the given affine gap costs
// (blastp default: open 11, extend 1).
func Blosum62(gapOpen, gapExtend int) *Scheme {
	s := *blosum62
	s.GapOpen, s.GapExtend = gapOpen, gapExtend
	return &s
}

// DefaultProtein returns BLOSUM62 with the blastp default gap costs.
func DefaultProtein() *Scheme { return Blosum62(11, 1) }

var blosum62 *Scheme

func init() {
	m, err := ParseMatrix(strings.NewReader(blosum62Text))
	if err != nil {
		panic("align: embedded BLOSUM62 failed to parse: " + err.Error())
	}
	m.Name = "BLOSUM62"
	blosum62 = m
}

// ParseMatrix reads a substitution matrix in NCBI text format: a
// header row of residue letters followed by one row per residue. Rows
// and columns may appear in any residue order; scores are stored into
// the dense protein alphabet indices.
func ParseMatrix(r *strings.Reader) (*Scheme, error) {
	sc := bufio.NewScanner(r)
	var cols []int
	t := make([][]int, seq.NumAA)
	for i := range t {
		t[i] = make([]int, seq.NumAA)
		for j := range t[i] {
			t[i][j] = -127 // sentinel: unset
		}
	}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if cols == nil {
			for _, f := range fields {
				if len(f) != 1 {
					return nil, fmt.Errorf("align: bad matrix header field %q", f)
				}
				idx := seq.AAIndex(f[0])
				if idx < 0 {
					return nil, fmt.Errorf("align: unknown residue %q in matrix header", f)
				}
				cols = append(cols, idx)
			}
			continue
		}
		if len(fields) != len(cols)+1 {
			return nil, fmt.Errorf("align: matrix row %q has %d fields, want %d", fields[0], len(fields), len(cols)+1)
		}
		rowIdx := seq.AAIndex(fields[0][0])
		if len(fields[0]) != 1 || rowIdx < 0 {
			return nil, fmt.Errorf("align: unknown residue %q in matrix row", fields[0])
		}
		for k, f := range fields[1:] {
			var v int
			if _, err := fmt.Sscanf(f, "%d", &v); err != nil {
				return nil, fmt.Errorf("align: bad score %q in row %q", f, fields[0])
			}
			t[rowIdx][cols[k]] = v
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if cols == nil {
		return nil, fmt.Errorf("align: empty matrix")
	}
	// Fill unset cells (letters absent from the file) with the X row
	// default so lookups stay safe.
	for i := range t {
		for j := range t[i] {
			if t[i][j] == -127 {
				t[i][j] = -1
			}
		}
	}
	return &Scheme{Kind: seq.Protein, Table: t, GapOpen: 11, GapExtend: 1}, nil
}

// blosum62Text is the standard NCBI BLOSUM62 matrix.
const blosum62Text = `
#  Matrix made by matblas from blosum62.iij
   A  R  N  D  C  Q  E  G  H  I  L  K  M  F  P  S  T  W  Y  V  B  Z  X  *
A  4 -1 -2 -2  0 -1 -1  0 -2 -1 -1 -1 -1 -2 -1  1  0 -3 -2  0 -2 -1  0 -4
R -1  5  0 -2 -3  1  0 -2  0 -3 -2  2 -1 -3 -2 -1 -1 -3 -2 -3 -1  0 -1 -4
N -2  0  6  1 -3  0  0  0  1 -3 -3  0 -2 -3 -2  1  0 -4 -2 -3  3  0 -1 -4
D -2 -2  1  6 -3  0  2 -1 -1 -3 -4 -1 -3 -3 -1  0 -1 -4 -3 -3  4  1 -1 -4
C  0 -3 -3 -3  9 -3 -4 -3 -3 -1 -1 -3 -1 -2 -3 -1 -1 -2 -2 -1 -3 -3 -2 -4
Q -1  1  0  0 -3  5  2 -2  0 -3 -2  1  0 -3 -1  0 -1 -2 -1 -2  0  3 -1 -4
E -1  0  0  2 -4  2  5 -2  0 -3 -3  1 -2 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
G  0 -2  0 -1 -3 -2 -2  6 -2 -4 -4 -2 -3 -3 -2  0 -2 -2 -3 -3 -1 -2 -1 -4
H -2  0  1 -1 -3  0  0 -2  8 -3 -3 -1 -2 -1 -2 -1 -2 -2  2 -3  0  0 -1 -4
I -1 -3 -3 -3 -1 -3 -3 -4 -3  4  2 -3  1  0 -3 -2 -1 -3 -1  3 -3 -3 -1 -4
L -1 -2 -3 -4 -1 -2 -3 -4 -3  2  4 -2  2  0 -3 -2 -1 -2 -1  1 -4 -3 -1 -4
K -1  2  0 -1 -3  1  1 -2 -1 -3 -2  5 -1 -3 -1  0 -1 -3 -2 -2  0  1 -1 -4
M -1 -1 -2 -3 -1  0 -2 -3 -2  1  2 -1  5  0 -2 -1 -1 -1 -1  1 -3 -1 -1 -4
F -2 -3 -3 -3 -2 -3 -3 -3 -1  0  0 -3  0  6 -4 -2 -2  1  3 -1 -3 -3 -1 -4
P -1 -2 -2 -1 -3 -1 -1 -2 -2 -3 -3 -1 -2 -4  7 -1 -1 -4 -3 -2 -2 -1 -2 -4
S  1 -1  1  0 -1  0  0  0 -1 -2 -2  0 -1 -2 -1  4  1 -3 -2 -2  0  0  0 -4
T  0 -1  0 -1 -1 -1 -1 -2 -2 -1 -1 -1 -1 -2 -1  1  5 -2 -2  0 -1 -1  0 -4
W -3 -3 -4 -4 -2 -2 -3 -2 -2 -3 -2 -3 -1  1 -4 -3 -2 11  2 -3 -4 -3 -2 -4
Y -2 -2 -2 -3 -2 -1 -2 -3  2 -1 -1 -2 -1  3 -3 -2 -2  2  7 -1 -3 -2 -1 -4
V  0 -3 -3 -3 -1 -2 -2 -3 -3  3  1 -2  1 -1 -2 -2  0 -3 -1  4 -3 -2 -1 -4
B -2 -1  3  4 -3  0  1 -1  0 -3 -4  0 -3 -3 -2  0 -1 -4 -3 -3  4  1 -1 -4
Z -1  0  0  1 -3  3  4 -2  0 -3 -3  1 -1 -3 -1  0 -1 -3 -2 -2  1  4 -1 -4
X  0 -1 -1 -1 -2 -1 -1 -1 -1 -1 -1 -1 -1 -1 -2  0  0 -2 -1 -1 -1 -1 -1 -4
* -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4 -4  1
`

// LoadMatrixFile reads an NCBI-format substitution matrix (e.g. a
// PAM250 or BLOSUM80 file as distributed with BLAST) and returns a
// protein scheme with the given gap costs — the "expert-specified
// scoring matrix" path of classic blastall's -M option.
func LoadMatrixFile(path string, gapOpen, gapExtend int) (*Scheme, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	m, err := ParseMatrix(strings.NewReader(string(data)))
	if err != nil {
		return nil, fmt.Errorf("align: %s: %w", path, err)
	}
	m.Name = filepath.Base(path)
	m.GapOpen, m.GapExtend = gapOpen, gapExtend
	return m, nil
}
