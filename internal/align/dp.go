package align

// Full dynamic-programming alignment with affine gaps (Gotoh). These
// are used for ground-truth testing of the X-drop extensions, for the
// final traceback of reported BLAST hits, and as a standalone API.

const negInf = -(1 << 29)

// SmithWaterman computes the best local alignment of dense-coded
// sequences a and b under scheme s, including the traceback. It
// returns an alignment with Score 0 and empty Ops when no positive-
// scoring alignment exists.
func SmithWaterman(a, b []byte, s *Scheme) *Alignment {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return &Alignment{}
	}
	// H: best score ending at (i,j); E: best ending with gap in a
	// (insert); F: best ending with gap in b (delete).
	H := make([][]int32, n+1)
	E := make([][]int32, n+1)
	F := make([][]int32, n+1)
	for i := range H {
		H[i] = make([]int32, m+1)
		E[i] = make([]int32, m+1)
		F[i] = make([]int32, m+1)
		E[i][0] = negInf
		F[i][0] = negInf
	}
	for j := 0; j <= m; j++ {
		E[0][j] = negInf
		F[0][j] = negInf
	}
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	var best int32
	bi, bj := 0, 0
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			e := E[i][j-1] - ext
			if h := H[i][j-1] - open; h > e {
				e = h
			}
			E[i][j] = e
			f := F[i-1][j] - ext
			if h := H[i-1][j] - open; h > f {
				f = h
			}
			F[i][j] = f
			h := H[i-1][j-1] + int32(s.Score(a[i-1], b[j-1]))
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if h < 0 {
				h = 0
			}
			H[i][j] = h
			if h > best {
				best, bi, bj = h, i, j
			}
		}
	}
	if best == 0 {
		return &Alignment{}
	}
	// Traceback from (bi,bj) until H hits 0.
	var ops []Op
	i, j := bi, bj
	state := byte('H')
	for H[i][j] != 0 || state != 'H' {
		switch state {
		case 'H':
			switch {
			case H[i][j] == E[i][j]:
				state = 'E'
			case H[i][j] == F[i][j]:
				state = 'F'
			default:
				ops = appendOp(ops, OpMatch, 1)
				i--
				j--
			}
		case 'E': // gap in a, consume b
			ops = appendOp(ops, OpInsert, 1)
			if E[i][j] == H[i][j-1]-open {
				state = 'H'
			}
			j--
		case 'F': // gap in b, consume a
			ops = appendOp(ops, OpDelete, 1)
			if F[i][j] == H[i-1][j]-open {
				state = 'H'
			}
			i--
		}
	}
	return &Alignment{
		Score:  int(best),
		AStart: i, AEnd: bi,
		BStart: j, BEnd: bj,
		Ops: reverseOps(ops),
	}
}

// SmithWatermanScore computes only the optimal local score using
// linear memory. It is the reference oracle for property tests.
func SmithWatermanScore(a, b []byte, s *Scheme) int {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0
	}
	H := make([]int32, m+1)
	E := make([]int32, m+1)
	for j := range E {
		E[j] = negInf
	}
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	var best int32
	for i := 1; i <= n; i++ {
		var diag, f int32 = 0, negInf
		for j := 1; j <= m; j++ {
			e := E[j] - ext
			if h := H[j] - open; h > e {
				e = h
			}
			E[j] = e
			f -= ext
			if h := H[j-1] - open; h > f {
				f = h
			}
			h := diag + int32(s.Score(a[i-1], b[j-1]))
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			if h < 0 {
				h = 0
			}
			diag = H[j]
			H[j] = h
			if h > best {
				best = h
			}
		}
	}
	return int(best)
}

// NeedlemanWunsch computes the optimal global alignment of a and b
// with affine gaps, including traceback. End gaps are penalized.
func NeedlemanWunsch(a, b []byte, s *Scheme) *Alignment {
	n, m := len(a), len(b)
	H := make([][]int32, n+1)
	E := make([][]int32, n+1)
	F := make([][]int32, n+1)
	open := int32(s.GapOpen + s.GapExtend)
	ext := int32(s.GapExtend)
	for i := range H {
		H[i] = make([]int32, m+1)
		E[i] = make([]int32, m+1)
		F[i] = make([]int32, m+1)
	}
	for j := 1; j <= m; j++ {
		H[0][j] = -open - ext*int32(j-1)
		E[0][j] = H[0][j]
		F[0][j] = negInf
	}
	for i := 1; i <= n; i++ {
		H[i][0] = -open - ext*int32(i-1)
		F[i][0] = H[i][0]
		E[i][0] = negInf
	}
	for i := 1; i <= n; i++ {
		for j := 1; j <= m; j++ {
			e := E[i][j-1] - ext
			if h := H[i][j-1] - open; h > e {
				e = h
			}
			E[i][j] = e
			f := F[i-1][j] - ext
			if h := H[i-1][j] - open; h > f {
				f = h
			}
			F[i][j] = f
			h := H[i-1][j-1] + int32(s.Score(a[i-1], b[j-1]))
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			H[i][j] = h
		}
	}
	var ops []Op
	i, j := n, m
	state := byte('H')
	for i > 0 || j > 0 {
		switch state {
		case 'H':
			switch {
			case i == 0:
				state = 'E'
			case j == 0:
				state = 'F'
			case H[i][j] == E[i][j]:
				state = 'E'
			case H[i][j] == F[i][j]:
				state = 'F'
			default:
				ops = appendOp(ops, OpMatch, 1)
				i--
				j--
			}
		case 'E':
			ops = appendOp(ops, OpInsert, 1)
			if j == 1 || E[i][j] == H[i][j-1]-open {
				state = 'H'
			}
			j--
		case 'F':
			ops = appendOp(ops, OpDelete, 1)
			if i == 1 || F[i][j] == H[i-1][j]-open {
				state = 'H'
			}
			i--
		}
	}
	return &Alignment{
		Score:  int(H[n][m]),
		AStart: 0, AEnd: n,
		BStart: 0, BEnd: m,
		Ops: reverseOps(ops),
	}
}
