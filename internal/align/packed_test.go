package align

import (
	"math/rand"
	"testing"

	"pario/internal/seq"
)

// randomLetters builds a nucleotide letter sequence of length n that is
// mostly ACGT with a sprinkling of ambiguity codes, so the packed and
// byte kernels are exercised over exactly the inputs blastdb hands
// them (NucCode folds ambiguity to concrete bases before packing).
func randomLetters(rng *rand.Rand, n int) []byte {
	const concrete = "ACGT"
	const ambiguous = "NRYKMSWBDHVX"
	out := make([]byte, n)
	for i := range out {
		if rng.Intn(20) == 0 {
			out[i] = ambiguous[rng.Intn(len(ambiguous))]
		} else {
			out[i] = concrete[rng.Intn(len(concrete))]
		}
	}
	return out
}

func codesAndPacked(letters []byte) (codes, packed []byte) {
	s := &seq.Sequence{Kind: seq.Nucleotide, Data: letters}
	codes = s.Codes()
	return codes, seq.PackCodes(codes)
}

// checkPackedMatchesByte runs both kernels on one seed and fails the
// test on any divergence in score or extent.
func checkPackedMatchesByte(t *testing.T, aCodes, aPacked, bCodes, bPacked []byte, ai, bi, w int, sch *Scheme, xdrop int) {
	t.Helper()
	match, mismatch, ok := UniformNucScheme(sch)
	if !ok {
		t.Fatalf("scheme %q not uniform", sch.Name)
	}
	wScore, wAF, wAT, wBF, wBT := ExtendUngapped(aCodes, bCodes, ai, bi, w, sch, xdrop)
	pScore, pAF, pAT, pBF, pBT := PackedExtend(aPacked, len(aCodes), bPacked, len(bCodes), ai, bi, w, match, mismatch, xdrop)
	if wScore != pScore || wAF != pAF || wAT != pAT || wBF != pBF || wBT != pBT {
		t.Fatalf("PackedExtend diverges at ai=%d bi=%d w=%d match=%d mismatch=%d xdrop=%d (an=%d bn=%d):\n  byte   score=%d a=[%d,%d) b=[%d,%d)\n  packed score=%d a=[%d,%d) b=[%d,%d)",
			ai, bi, w, match, mismatch, xdrop, len(aCodes), len(bCodes),
			wScore, wAF, wAT, wBF, wBT, pScore, pAF, pAT, pBF, pBT)
	}
}

// TestPackedExtendMatchesByteKernel is the equivalence property test:
// on randomized sequences (ambiguity letters included), random uniform
// schemes, and seeds at all four 2-bit phase offsets — including seeds
// hugging sequence ends and lengths straddling 32-base word
// boundaries — PackedExtend must reproduce ExtendUngapped bit for bit.
func TestPackedExtendMatchesByteKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	lengths := []int{5, 31, 32, 33, 63, 64, 65, 127, 128, 129, 200, 700}
	for trial := 0; trial < 400; trial++ {
		an := lengths[rng.Intn(len(lengths))] + rng.Intn(5)
		bn := lengths[rng.Intn(len(lengths))] + rng.Intn(5)
		aLet := randomLetters(rng, an)
		bLet := randomLetters(rng, bn)
		// Plant a correlated fragment so extensions have real match
		// runs to ride, not just coin-flip noise.
		if an > 16 && bn > 16 && rng.Intn(2) == 0 {
			n := 8 + rng.Intn(min(an, bn)-8)
			ao := rng.Intn(an - n + 1)
			bo := rng.Intn(bn - n + 1)
			copy(bLet[bo:bo+n], aLet[ao:ao+n])
		}
		aCodes, aPacked := codesAndPacked(aLet)
		bCodes, bPacked := codesAndPacked(bLet)

		match := 1 + rng.Intn(5)
		mismatch := -(1 + rng.Intn(5))
		sch := NucleotideScheme(match, mismatch, 5, 2)
		xdrop := rng.Intn(41)

		w := 1 + rng.Intn(min(min(an, bn), 28))
		for phase := 0; phase < 4; phase++ {
			ai := rng.Intn(an - w + 1)
			ai = ai - ai%4 + phase
			if ai+w > an {
				ai -= 4
			}
			if ai < 0 {
				continue
			}
			bi := rng.Intn(bn - w + 1)
			checkPackedMatchesByte(t, aCodes, aPacked, bCodes, bPacked, ai, bi, w, sch, xdrop)
		}
		// Seeds hugging the ends: zero room to extend on one side.
		checkPackedMatchesByte(t, aCodes, aPacked, bCodes, bPacked, 0, 0, w, sch, xdrop)
		checkPackedMatchesByte(t, aCodes, aPacked, bCodes, bPacked, an-w, bn-w, w, sch, xdrop)
	}
}

// TestPackedExtendIdenticalSequences pins the easy-to-reason-about
// corner: a sequence against itself extends to the full length with
// every base a match, across word-boundary lengths and phases.
func TestPackedExtendIdenticalSequences(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{12, 31, 32, 33, 64, 96, 129} {
		letters := randomLetters(rng, n)
		codes, packed := codesAndPacked(letters)
		for ai := 0; ai+11 <= n && ai < 8; ai++ {
			score, aF, aT, bF, bT := PackedExtend(packed, n, packed, n, ai, ai, 11, 2, -3, 30)
			if score != 2*n || aF != 0 || aT != n || bF != 0 || bT != n {
				t.Fatalf("n=%d ai=%d: got score=%d a=[%d,%d) b=[%d,%d), want full-length match score %d", n, ai, score, aF, aT, bF, bT, 2*n)
			}
		}
		_ = codes
	}
}

func TestPackedMismatches(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(150)
		aCodes, aPacked := codesAndPacked(randomLetters(rng, n))
		bCodes, bPacked := codesAndPacked(randomLetters(rng, n))
		w := 1 + rng.Intn(n)
		ai := rng.Intn(n - w + 1)
		bi := rng.Intn(n - w + 1)
		want := 0
		for k := 0; k < w; k++ {
			if aCodes[ai+k] != bCodes[bi+k] {
				want++
			}
		}
		if got := packedMismatches(aPacked, bPacked, ai, bi, w); got != want {
			t.Fatalf("packedMismatches(ai=%d, bi=%d, w=%d) = %d, want %d", ai, bi, w, got, want)
		}
	}
}

func TestUniformNucScheme(t *testing.T) {
	m, mm, ok := UniformNucScheme(NucleotideScheme(1, -3, 5, 2))
	if !ok || m != 1 || mm != -3 {
		t.Fatalf("NucleotideScheme(1,-3): got (%d, %d, %v), want (1, -3, true)", m, mm, ok)
	}
	if _, _, ok := UniformNucScheme(Blosum62(11, 1)); ok {
		t.Fatal("Blosum62 reported as uniform nucleotide scheme")
	}
	bent := NucleotideScheme(2, -3, 5, 2)
	bent.Table[1][2] = -1
	if _, _, ok := UniformNucScheme(bent); ok {
		t.Fatal("non-uniform table reported as uniform")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
