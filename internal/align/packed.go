package align

import (
	"encoding/binary"
	"math/bits"
)

// Packed ungapped extension: the byte-at-a-time X-drop kernel of
// ExtendUngapped rewritten over 2-bit packed DNA, comparing 32 bases
// per uint64 XOR and locating mismatches with TrailingZeros64 /
// LeadingZeros64 instead of visiting every base. It applies only to
// uniform match/mismatch nucleotide schemes (every diagonal table cell
// equal, every off-diagonal cell equal) — comparisons that need a full
// substitution table (proteins, asymmetric nucleotide tables) stay on
// the byte kernel, as does megablast's greedy gapped extension.
// Ambiguity codes carry no special score in either kernel: NucCode
// resolves them to concrete bases at pack/code time, so the packed and
// byte kernels see bit-identical data.

// uniformMask55 selects the low bit of every 2-bit group; folding a
// XOR word through it turns "either bit differs" into one countable
// bit per base.
const uniformMask55 = 0x5555555555555555

// window64 loads the 32 bases starting at base position pos of the
// 2-bit packed slice p into a uint64, base pos in the two lowest bits.
// Positions past the slice's end read as zero; the caller bounds how
// many of the 32 bases it consumes. Near the packed tail — the word
// boundary where an 8-byte load would run off the slice — the window
// is assembled byte by byte instead.
func window64(p []byte, pos int) uint64 {
	byteOff := pos >> 2
	shift := uint(pos&3) * 2
	if byteOff+9 <= len(p) {
		w := binary.LittleEndian.Uint64(p[byteOff:]) >> shift
		if shift != 0 {
			w |= uint64(p[byteOff+8]) << (64 - shift)
		}
		return w
	}
	var w uint64
	for k := len(p) - 1; k >= byteOff; k-- {
		w = w<<8 | uint64(p[k])
	}
	return w >> shift
}

// packedMismatches counts mismatching bases between a[ai:ai+w) and
// b[bi:bi+w) over the packed representations.
func packedMismatches(ap, bp []byte, ai, bi, w int) int {
	mm := 0
	for k := 0; k < w; {
		chunk := w - k
		if chunk > 32 {
			chunk = 32
		}
		x := window64(ap, ai+k) ^ window64(bp, bi+k)
		if chunk < 32 {
			x &= uint64(1)<<(2*uint(chunk)) - 1
		}
		mm += bits.OnesCount64((x | x>>1) & uniformMask55)
		k += chunk
	}
	return mm
}

// PackedExtend is ExtendUngapped over 2-bit packed sequences under a
// uniform match/mismatch scheme: it extends the seed a[ai:ai+w) vs
// b[bi:bi+w) along the diagonal in both directions, stopping a
// direction when the running score falls more than xdrop below that
// direction's best. ap and bp hold an and bn bases respectively in
// Pack2Bit layout (four bases per byte, LSB first). The returned
// score and extents are bit-identical to
// ExtendUngapped(aCodes, bCodes, ai, bi, w, uniformScheme, xdrop).
func PackedExtend(ap []byte, an int, bp []byte, bn int, ai, bi, w, match, mismatch, xdrop int) (score, aFrom, aTo, bFrom, bTo int) {
	mm := packedMismatches(ap, bp, ai, bi, w)
	seed := (w-mm)*match + mm*mismatch

	// Rightward: per byte-kernel position k (1-based), run += score,
	// best/len update, then X-drop check. A run of consecutive matches
	// only raises the running score, so best-tracking can jump straight
	// to the run's end and the X-drop cutoff can only fire on a
	// mismatch — which is exactly what the XOR word iteration visits.
	bestRight, rightLen := 0, 0
	{
		limit := an - (ai + w)
		if r := bn - (bi + w); r < limit {
			limit = r
		}
		run, pos := 0, 0
		i0, j0 := ai+w, bi+w
	right:
		for pos < limit {
			chunk := limit - pos
			if chunk > 32 {
				chunk = 32
			}
			x := window64(ap, i0+pos) ^ window64(bp, j0+pos)
			if chunk < 32 {
				x &= uint64(1)<<(2*uint(chunk)) - 1
			}
			consumed := 0
			for consumed < chunk {
				m := chunk - consumed
				if x != 0 {
					if t := bits.TrailingZeros64(x) / 2; t < m {
						m = t
					}
				}
				if m > 0 { // leading matches of the remaining chunk
					run += m * match
					pos += m
					consumed += m
					if run > bestRight {
						bestRight, rightLen = run, pos
					}
					x >>= uint(2 * m)
				}
				if consumed == chunk {
					break
				}
				run += mismatch
				pos++
				consumed++
				x >>= 2
				if run < bestRight-xdrop {
					break right
				}
			}
		}
	}

	// Leftward mirror: shift each XOR window so the base nearest the
	// seed sits in the top two bits, then walk mismatches with
	// LeadingZeros64.
	bestLeft, leftLen := 0, 0
	{
		limit := ai
		if bi < limit {
			limit = bi
		}
		run, pos := 0, 0
	left:
		for pos < limit {
			chunk := limit - pos
			if chunk > 32 {
				chunk = 32
			}
			x := window64(ap, ai-pos-chunk) ^ window64(bp, bi-pos-chunk)
			x <<= uint(64 - 2*chunk)
			consumed := 0
			for consumed < chunk {
				m := chunk - consumed
				if x != 0 {
					if t := bits.LeadingZeros64(x) / 2; t < m {
						m = t
					}
				}
				if m > 0 {
					run += m * match
					pos += m
					consumed += m
					if run > bestLeft {
						bestLeft, leftLen = run, pos
					}
					x <<= uint(2 * m)
				}
				if consumed == chunk {
					break
				}
				run += mismatch
				pos++
				consumed++
				x <<= 2
				if run < bestLeft-xdrop {
					break left
				}
			}
		}
	}

	score = seed + bestLeft + bestRight
	return score, ai - leftLen, ai + w + rightLen, bi - leftLen, bi + w + rightLen
}

// UniformNucScheme reports whether s is a 4x4 match/mismatch scheme —
// every diagonal entry one value, every off-diagonal entry another —
// and returns the two values. Only such schemes are eligible for
// PackedExtend.
func UniformNucScheme(s *Scheme) (match, mismatch int, ok bool) {
	if len(s.Table) != 4 {
		return 0, 0, false
	}
	match, mismatch = s.Table[0][0], 0
	haveMis := false
	for i := 0; i < 4; i++ {
		if len(s.Table[i]) != 4 {
			return 0, 0, false
		}
		for j := 0; j < 4; j++ {
			v := s.Table[i][j]
			if i == j {
				if v != match {
					return 0, 0, false
				}
				continue
			}
			if !haveMis {
				mismatch, haveMis = v, true
			} else if v != mismatch {
				return 0, 0, false
			}
		}
	}
	return match, mismatch, true
}
