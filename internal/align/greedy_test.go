package align

import (
	"testing"

	"pario/internal/util"
)

func greedyDefault() GreedyScheme { return NewGreedyScheme(1, -3) }

func TestGreedySchemeAlgebra(t *testing.T) {
	g := NewGreedyScheme(1, -3) // doubled internally to 2/-6
	if g.Match != 2 {
		t.Errorf("match = %d", g.Match)
	}
	if g.Mismatch() != -6 {
		t.Errorf("mismatch = %d, want -6", g.Mismatch())
	}
	if g.GapPerLetter() != 7 { // |mismatch| + match/2 = 6 + 1
		t.Errorf("gap = %d, want 7", g.GapPerLetter())
	}
	// Even match stays as given.
	g2 := NewGreedyScheme(2, -4)
	if g2.Match != 2 || g2.Mismatch() != -4 {
		t.Errorf("even scheme: %+v mismatch %d", g2, g2.Mismatch())
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid scheme accepted")
		}
	}()
	NewGreedyScheme(0, -1)
}

func TestGreedyIdenticalSequences(t *testing.T) {
	g := greedyDefault()
	a := codes("ACGTACGTACGTACGT")
	score, aLen, bLen := GreedyExtendRight(a, a, g, 100)
	if aLen != len(a) || bLen != len(a) {
		t.Errorf("consumed %d/%d of %d", aLen, bLen, len(a))
	}
	if score != g.Match*len(a) {
		t.Errorf("score = %d, want %d", score, g.Match*len(a))
	}
}

func TestGreedySingleMismatch(t *testing.T) {
	g := greedyDefault()
	a := codes("ACGTACGTACGTACGTACGT")
	b := codes("ACGTACGTTCGTACGTACGT") // position 8 differs
	score, aLen, bLen := GreedyExtendRight(a, b, g, 100)
	if aLen != len(a) || bLen != len(b) {
		t.Errorf("consumed %d/%d", aLen, bLen)
	}
	want := g.Match*(len(a)-1) + g.Mismatch()
	if score != want {
		t.Errorf("score = %d, want %d", score, want)
	}
}

func TestGreedySingleGap(t *testing.T) {
	g := greedyDefault()
	a := codes("ACGTACGTGACGTACGT") // extra G inserted at position 8
	b := codes("ACGTACGTACGTACGT")
	score, aLen, bLen := GreedyExtendRight(a, b, g, 100)
	if aLen != len(a) || bLen != len(b) {
		t.Errorf("consumed %d/%d of %d/%d", aLen, bLen, len(a), len(b))
	}
	want := g.Match*len(b) - g.GapPerLetter()
	if score != want {
		t.Errorf("score = %d, want %d", score, want)
	}
}

func TestGreedyXDropStops(t *testing.T) {
	g := greedyDefault()
	// 8 matches then pure garbage: with a small x-drop the extension
	// must stop near the boundary.
	a := codes("ACGTACGT" + "CCCCCCCCCCCC")
	b := codes("ACGTACGT" + "GGGGGGGGGGGG")
	score, aLen, _ := GreedyExtendRight(a, b, g, 8)
	if aLen > 10 {
		t.Errorf("extension crossed garbage: consumed %d", aLen)
	}
	if score != g.Match*8 {
		t.Errorf("score = %d, want %d", score, g.Match*8)
	}
}

func TestGreedyEmptyInput(t *testing.T) {
	g := greedyDefault()
	if s, a, b := GreedyExtendRight(nil, codes("ACGT"), g, 10); s != 0 || a != 0 || b != 0 {
		t.Errorf("empty a: %d %d %d", s, a, b)
	}
}

func TestGreedyTwoSided(t *testing.T) {
	g := greedyDefault()
	a := codes("TTTTACGTACGTACGTTTTT")
	score, aFrom, aTo, bFrom, bTo := GreedyExtend(a, a, 10, 10, g, 100)
	if aFrom != 0 || aTo != len(a) || bFrom != 0 || bTo != len(a) {
		t.Errorf("extents [%d,%d) x [%d,%d)", aFrom, aTo, bFrom, bTo)
	}
	if score != g.Match*len(a) {
		t.Errorf("score = %d", score)
	}
}

// TestGreedyMatchesDPOnSimilarSequences: for highly similar pairs the
// greedy score must equal the anchored DP optimum under the
// equivalent linear-gap scheme.
func TestGreedyMatchesDPOnSimilarSequences(t *testing.T) {
	g := greedyDefault()
	// Equivalent affine scheme with gap open = 0 (linear gaps):
	// match 2, mismatch -6, gap per letter 7.
	s := &Scheme{
		Table:     NucleotideScheme(2, -6, 1, 1).Table,
		GapOpen:   0,
		GapExtend: 7,
	}
	rng := util.NewRNG(41)
	for trial := 0; trial < 100; trial++ {
		n := 30 + rng.Intn(40)
		a := make([]byte, n)
		for i := range a {
			a[i] = byte(rng.Intn(4))
		}
		// b = a with up to 2 point mutations (keeps sequences highly
		// similar, the megablast regime).
		b := append([]byte(nil), a...)
		for k := 0; k < rng.Intn(3); k++ {
			b[rng.Intn(len(b))] = byte(rng.Intn(4))
		}
		got, _, _ := GreedyExtendRight(a, b, g, 1<<20)
		want := bestExtensionScore(a, b, s)
		if got < want {
			t.Fatalf("trial %d: greedy %d < DP %d", trial, got, want)
		}
		// Greedy can never exceed the unconstrained optimum either.
		if got > want {
			t.Fatalf("trial %d: greedy %d > DP %d", trial, got, want)
		}
	}
}

func TestGreedyNeverNegativeProgress(t *testing.T) {
	g := greedyDefault()
	rng := util.NewRNG(43)
	for trial := 0; trial < 200; trial++ {
		a := make([]byte, 1+rng.Intn(60))
		b := make([]byte, 1+rng.Intn(60))
		for i := range a {
			a[i] = byte(rng.Intn(4))
		}
		for i := range b {
			b[i] = byte(rng.Intn(4))
		}
		score, aLen, bLen := GreedyExtendRight(a, b, g, 20)
		if aLen < 0 || bLen < 0 || aLen > len(a) || bLen > len(b) {
			t.Fatalf("extents out of range: %d %d", aLen, bLen)
		}
		if score < 0 {
			t.Fatalf("negative best score %d (empty extension scores 0)", score)
		}
	}
}
