package align

import (
	"fmt"
	"strings"
)

// OpKind is the type of an alignment edit operation.
type OpKind byte

const (
	// OpMatch consumes one letter of both sequences (match or
	// substitution).
	OpMatch OpKind = 'M'
	// OpInsert consumes one letter of B only (gap in A).
	OpInsert OpKind = 'I'
	// OpDelete consumes one letter of A only (gap in B).
	OpDelete OpKind = 'D'
)

// Op is a run-length-encoded edit operation.
type Op struct {
	Kind OpKind
	Len  int
}

// Alignment is the result of a pairwise alignment between sequence A
// (typically the query) and sequence B (typically a subject). Starts
// and ends are 0-based half-open offsets into the aligned letters.
type Alignment struct {
	Score  int
	AStart int
	AEnd   int
	BStart int
	BEnd   int
	Ops    []Op
}

// ALen returns the number of A letters consumed by the alignment.
func (al *Alignment) ALen() int { return al.AEnd - al.AStart }

// BLen returns the number of B letters consumed by the alignment.
func (al *Alignment) BLen() int { return al.BEnd - al.BStart }

// Length returns the total alignment length in columns.
func (al *Alignment) Length() int {
	n := 0
	for _, op := range al.Ops {
		n += op.Len
	}
	return n
}

// CIGAR renders the edit script in CIGAR notation ("12M1D7M").
func (al *Alignment) CIGAR() string {
	var sb strings.Builder
	for _, op := range al.Ops {
		fmt.Fprintf(&sb, "%d%c", op.Len, op.Kind)
	}
	return sb.String()
}

// Identity counts matching columns given the aligned letter data and
// returns (identities, alignment length).
func (al *Alignment) Identity(a, b []byte) (matches, columns int) {
	ai, bi := al.AStart, al.BStart
	for _, op := range al.Ops {
		switch op.Kind {
		case OpMatch:
			for k := 0; k < op.Len; k++ {
				if a[ai+k] == b[bi+k] {
					matches++
				}
			}
			ai += op.Len
			bi += op.Len
		case OpInsert:
			bi += op.Len
		case OpDelete:
			ai += op.Len
		}
		columns += op.Len
	}
	return matches, columns
}

// Gaps returns the total number of gap columns.
func (al *Alignment) Gaps() int {
	n := 0
	for _, op := range al.Ops {
		if op.Kind != OpMatch {
			n += op.Len
		}
	}
	return n
}

// appendOp adds an operation, merging with the previous one when the
// kinds match.
func appendOp(ops []Op, kind OpKind, n int) []Op {
	if n <= 0 {
		return ops
	}
	if len(ops) > 0 && ops[len(ops)-1].Kind == kind {
		ops[len(ops)-1].Len += n
		return ops
	}
	return append(ops, Op{Kind: kind, Len: n})
}

// reverseOps reverses ops in place (tracebacks produce them backwards)
// and merges adjacent runs of the same kind.
func reverseOps(ops []Op) []Op {
	for i, j := 0, len(ops)-1; i < j; i, j = i+1, j-1 {
		ops[i], ops[j] = ops[j], ops[i]
	}
	merged := ops[:0]
	for _, op := range ops {
		if n := len(merged); n > 0 && merged[n-1].Kind == op.Kind {
			merged[n-1].Len += op.Len
			continue
		}
		merged = append(merged, op)
	}
	return merged
}

// Format renders a BLAST-style three-line pairwise view of the
// alignment over the letter data of A and B, wrapped at width columns.
// matchLine uses '|' for identities and ' ' otherwise.
func (al *Alignment) Format(a, b []byte, width int) string {
	if width <= 0 {
		width = 60
	}
	var arow, mrow, brow []byte
	ai, bi := al.AStart, al.BStart
	for _, op := range al.Ops {
		for k := 0; k < op.Len; k++ {
			switch op.Kind {
			case OpMatch:
				ca, cb := a[ai], b[bi]
				arow = append(arow, ca)
				brow = append(brow, cb)
				if ca == cb {
					mrow = append(mrow, '|')
				} else {
					mrow = append(mrow, ' ')
				}
				ai++
				bi++
			case OpInsert:
				arow = append(arow, '-')
				brow = append(brow, b[bi])
				mrow = append(mrow, ' ')
				bi++
			case OpDelete:
				arow = append(arow, a[ai])
				brow = append(brow, '-')
				mrow = append(mrow, ' ')
				ai++
			}
		}
	}
	var sb strings.Builder
	aPos, bPos := al.AStart, al.BStart
	for off := 0; off < len(arow); off += width {
		end := off + width
		if end > len(arow) {
			end = len(arow)
		}
		aChunk, mChunk, bChunk := arow[off:end], mrow[off:end], brow[off:end]
		aAdv := countNonGap(aChunk)
		bAdv := countNonGap(bChunk)
		fmt.Fprintf(&sb, "Query  %-6d %s  %d\n", aPos+1, aChunk, aPos+aAdv)
		fmt.Fprintf(&sb, "              %s\n", mChunk)
		fmt.Fprintf(&sb, "Sbjct  %-6d %s  %d\n\n", bPos+1, bChunk, bPos+bAdv)
		aPos += aAdv
		bPos += bAdv
	}
	return sb.String()
}

func countNonGap(row []byte) int {
	n := 0
	for _, c := range row {
		if c != '-' {
			n++
		}
	}
	return n
}
