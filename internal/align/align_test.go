package align

import (
	"os"
	"strings"
	"testing"
	"testing/quick"

	"pario/internal/seq"
	"pario/internal/util"
)

func codes(s string) []byte {
	sq := &seq.Sequence{Kind: seq.Nucleotide, Data: []byte(s)}
	return sq.Codes()
}

func protCodes(s string) []byte {
	sq := &seq.Sequence{Kind: seq.Protein, Data: []byte(s)}
	return sq.Codes()
}

func TestBlosum62Values(t *testing.T) {
	s := DefaultProtein()
	cases := []struct {
		a, b byte
		want int
	}{
		{'A', 'A', 4}, {'W', 'W', 11}, {'A', 'R', -1},
		{'C', 'C', 9}, {'E', 'Z', 4}, {'N', 'B', 3},
		{'*', '*', 1}, {'W', '*', -4}, {'X', 'X', -1},
	}
	for _, c := range cases {
		got := s.Score(byte(seq.AAIndex(c.a)), byte(seq.AAIndex(c.b)))
		if got != c.want {
			t.Errorf("BLOSUM62[%c][%c] = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestBlosum62Symmetric(t *testing.T) {
	s := DefaultProtein()
	for i := 0; i < seq.NumAA; i++ {
		for j := 0; j < seq.NumAA; j++ {
			if s.Table[i][j] != s.Table[j][i] {
				t.Fatalf("BLOSUM62 not symmetric at (%d,%d): %d vs %d",
					i, j, s.Table[i][j], s.Table[j][i])
			}
		}
	}
}

func TestNucleotideScheme(t *testing.T) {
	s := NucleotideScheme(1, -3, 5, 2)
	if s.Score(0, 0) != 1 || s.Score(0, 1) != -3 {
		t.Error("nucleotide scores wrong")
	}
	if s.GapCost(0) != 0 || s.GapCost(1) != 7 || s.GapCost(3) != 11 {
		t.Error("gap costs wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("invalid scheme should panic")
		}
	}()
	NucleotideScheme(-1, -3, 5, 2)
}

func TestParseMatrixErrors(t *testing.T) {
	for _, bad := range []string{
		"",
		"A R\nA 4\n",       // row too short
		"AB R\nA 4 -1\n",   // bad header field
		"A R\n1 4 -1\n",    // bad row residue
		"A R\nA four -1\n", // bad score
	} {
		if _, err := ParseMatrix(strings.NewReader(bad)); err == nil {
			t.Errorf("ParseMatrix(%q) should fail", bad)
		}
	}
}

func TestSmithWatermanExact(t *testing.T) {
	s := NucleotideScheme(1, -3, 5, 2)
	// Identical sequences: score = length.
	al := SmithWaterman(codes("ACGTACGT"), codes("ACGTACGT"), s)
	if al.Score != 8 {
		t.Errorf("identical score = %d, want 8", al.Score)
	}
	if al.AStart != 0 || al.AEnd != 8 || al.BStart != 0 || al.BEnd != 8 {
		t.Errorf("identical extents %+v", al)
	}
	if al.CIGAR() != "8M" {
		t.Errorf("CIGAR = %s", al.CIGAR())
	}
	// Embedded match.
	al = SmithWaterman(codes("TTTTACGTACGTTTTT"), codes("CCACGTACGTCC"), s)
	if al.Score != 8 {
		t.Errorf("embedded score = %d, want 8", al.Score)
	}
	// No match at all (with -3 mismatch a single match of +1 is best).
	al = SmithWaterman(codes("AAAA"), codes("CCCC"), s)
	if al.Score != 0 {
		t.Errorf("disjoint score = %d, want 0", al.Score)
	}
}

func TestSmithWatermanGap(t *testing.T) {
	s := NucleotideScheme(2, -3, 5, 2)
	// A 12-base match interrupted by a 1-base deletion in the subject:
	// score = 11*2 - (5+2) = 15.
	a := codes("ACGTACGTACGT")
	b := codes("ACGTACTACGT") // G at position 6 deleted
	al := SmithWaterman(a, b, s)
	if al.Score != 15 {
		t.Errorf("gapped score = %d, want 15", al.Score)
	}
	if al.Gaps() != 1 {
		t.Errorf("gaps = %d, want 1", al.Gaps())
	}
	m, cols := al.Identity(a, b)
	if m != 11 || cols != 12 {
		t.Errorf("identity = %d/%d, want 11/12", m, cols)
	}
}

func TestSmithWatermanMatchesLinearScore(t *testing.T) {
	s := DefaultNucleotide()
	rng := util.NewRNG(11)
	for trial := 0; trial < 200; trial++ {
		a := randomCodes(rng, 1+rng.Intn(40))
		b := randomCodes(rng, 1+rng.Intn(40))
		full := SmithWaterman(a, b, s)
		lin := SmithWatermanScore(a, b, s)
		if full.Score != lin {
			t.Fatalf("trial %d: traceback score %d != linear score %d", trial, full.Score, lin)
		}
		if full.Score > 0 {
			checkAlignmentScore(t, full, a, b, s)
		}
	}
}

// checkAlignmentScore replays the edit script and verifies the claimed
// score, extents and ops are mutually consistent.
func checkAlignmentScore(t *testing.T, al *Alignment, a, b []byte, s *Scheme) {
	t.Helper()
	score := 0
	ai, bi := al.AStart, al.BStart
	for _, op := range al.Ops {
		switch op.Kind {
		case OpMatch:
			for k := 0; k < op.Len; k++ {
				score += s.Score(a[ai+k], b[bi+k])
			}
			ai += op.Len
			bi += op.Len
		case OpInsert:
			score -= s.GapCost(op.Len)
			bi += op.Len
		case OpDelete:
			score -= s.GapCost(op.Len)
			ai += op.Len
		}
	}
	if ai != al.AEnd || bi != al.BEnd {
		t.Fatalf("ops consume (%d,%d), extents say (%d,%d)", ai, bi, al.AEnd, al.BEnd)
	}
	if score != al.Score {
		t.Fatalf("replayed score %d != claimed %d (cigar %s)", score, al.Score, al.CIGAR())
	}
}

func randomCodes(rng *util.RNG, n int) []byte {
	out := make([]byte, n)
	for i := range out {
		out[i] = byte(rng.Intn(4))
	}
	return out
}

func TestNeedlemanWunsch(t *testing.T) {
	s := NucleotideScheme(1, -1, 2, 1)
	al := NeedlemanWunsch(codes("ACGT"), codes("ACGT"), s)
	if al.Score != 4 || al.CIGAR() != "4M" {
		t.Errorf("identical NW: %d %s", al.Score, al.CIGAR())
	}
	// Global alignment of ACGT vs AGT: one deletion.
	al = NeedlemanWunsch(codes("ACGT"), codes("AGT"), s)
	if al.Score != 3-3 { // 3 matches - gap cost (2+1)
		t.Errorf("NW score = %d, want 0", al.Score)
	}
	checkAlignmentScore(t, al, codes("ACGT"), codes("AGT"), s)
	// Empty vs non-empty.
	al = NeedlemanWunsch(codes(""), codes("ACG"), s)
	if al.Score != -(2 + 3*1) {
		t.Errorf("empty NW score = %d", al.Score)
	}
}

func TestNeedlemanWunschConsistency(t *testing.T) {
	s := DefaultNucleotide()
	rng := util.NewRNG(13)
	for trial := 0; trial < 100; trial++ {
		a := randomCodes(rng, rng.Intn(30))
		b := randomCodes(rng, rng.Intn(30))
		if len(a) == 0 && len(b) == 0 {
			continue
		}
		al := NeedlemanWunsch(a, b, s)
		checkAlignmentScore(t, al, a, b, s)
		if al.ALen() != len(a) || al.BLen() != len(b) {
			t.Fatalf("NW not global: %+v for |a|=%d |b|=%d", al, len(a), len(b))
		}
	}
}

func TestExtendUngapped(t *testing.T) {
	s := NucleotideScheme(1, -3, 5, 2)
	a := codes("TTTTACGTACGTACGTTTTT")
	b := codes("GGGGACGTACGTACGTGGGG")
	// Seed of width 4 in the middle of the shared 12-mer.
	score, aFrom, aTo, bFrom, bTo := ExtendUngapped(a, b, 8, 8, 4, s, 10)
	if score != 12 {
		t.Errorf("ungapped score = %d, want 12", score)
	}
	if aFrom != 4 || aTo != 16 || bFrom != 4 || bTo != 16 {
		t.Errorf("extents = [%d,%d) x [%d,%d), want [4,16) x [4,16)", aFrom, aTo, bFrom, bTo)
	}
}

func TestExtendUngappedXDropStops(t *testing.T) {
	s := NucleotideScheme(1, -3, 5, 2)
	// Perfect 8-mer then garbage: with small xdrop the extension must
	// not cross the garbage even though a distant match follows.
	a := codes("ACGTACGTCCCCCCCCACGT")
	b := codes("ACGTACGTGGGGGGGGACGT")
	score, _, aTo, _, _ := ExtendUngapped(a, b, 0, 0, 4, s, 4)
	if aTo > 10 {
		t.Errorf("extension crossed garbage: aTo = %d", aTo)
	}
	if score != 8 {
		t.Errorf("score = %d, want 8", score)
	}
}

func TestExtendGappedPerfect(t *testing.T) {
	s := NucleotideScheme(1, -3, 5, 2)
	a := codes("ACGTACGTACGT")
	score, aFrom, aTo, bFrom, bTo := ExtendGapped(a, a, 6, 6, s, 20)
	if score != 12 {
		t.Errorf("perfect gapped score = %d, want 12", score)
	}
	if aFrom != 0 || aTo != 12 || bFrom != 0 || bTo != 12 {
		t.Errorf("extents [%d,%d) x [%d,%d)", aFrom, aTo, bFrom, bTo)
	}
}

func TestExtendGappedWithGap(t *testing.T) {
	s := NucleotideScheme(2, -3, 5, 2)
	a := codes("ACGTACGTACGT")
	b := codes("ACGTACTACGT") // one base deleted
	// Anchor on the aligned pair a[2]=G, b[2]=G.
	score, _, _, _, _ := ExtendGapped(a, b, 2, 2, s, 30)
	// Optimal local alignment: 11 matched columns minus one 1-gap: 22-7=15.
	if score != 15 {
		t.Errorf("gapped extension score = %d, want 15", score)
	}
}

func TestExtendGappedMatchesSWWithLargeXDrop(t *testing.T) {
	// With an anchor inside a strong match and a huge X-drop, the
	// two-sided extension must reach the full Smith-Waterman score.
	s := DefaultNucleotide()
	rng := util.NewRNG(17)
	for trial := 0; trial < 100; trial++ {
		// Construct related sequences: shared core with point noise.
		core := randomCodes(rng, 20+rng.Intn(20))
		a := append(append(randomCodes(rng, rng.Intn(10)), core...), randomCodes(rng, rng.Intn(10))...)
		b := append([]byte(nil), core...)
		// Mutate one position of b's copy of the core.
		if len(b) > 0 {
			b[rng.Intn(len(b))] = byte(rng.Intn(4))
		}
		sw := SmithWaterman(a, b, s)
		if sw.Score == 0 {
			continue
		}
		// Anchor at the middle of the SW alignment via its extents
		// (approximate: middle of the matched region).
		ai := (sw.AStart + sw.AEnd - 1) / 2
		bi := (sw.BStart + sw.BEnd - 1) / 2
		got, _, _, _, _ := ExtendGapped(a, b, ai, bi, s, 1<<20)
		if got < sw.Score {
			// The anchor pair may not lie on the optimal path; accept
			// only clear failures where the anchored optimum is missed.
			anch := anchoredOptimum(a, b, ai, bi, s)
			if got != anch {
				t.Fatalf("trial %d: ExtendGapped = %d, anchored optimum = %d (SW %d)",
					trial, got, anch, sw.Score)
			}
		}
	}
}

// anchoredOptimum computes, by unbanded DP, the best alignment score
// forced to align a[ai] with b[bi] (the oracle for ExtendGapped with
// unbounded X-drop).
func anchoredOptimum(a, b []byte, ai, bi int, s *Scheme) int {
	anchor := s.Score(a[ai], b[bi])
	right := bestExtensionScore(a[ai+1:], b[bi+1:], s)
	left := bestExtensionScore(reverseBytes(a[:ai]), reverseBytes(b[:bi]), s)
	return anchor + right + left
}

// bestExtensionScore is max over all (i,j) of the global alignment
// score of a[:i] vs b[:j], at least 0; computed by full DP.
func bestExtensionScore(a, b []byte, s *Scheme) int {
	n, m := len(a), len(b)
	open := s.GapOpen + s.GapExtend
	ext := s.GapExtend
	H := make([][]int, n+1)
	E := make([][]int, n+1)
	F := make([][]int, n+1)
	for i := range H {
		H[i] = make([]int, m+1)
		E[i] = make([]int, m+1)
		F[i] = make([]int, m+1)
	}
	best := 0
	for i := 0; i <= n; i++ {
		for j := 0; j <= m; j++ {
			if i == 0 && j == 0 {
				E[0][0], F[0][0] = negInf, negInf
				continue
			}
			e, f := negInf, negInf
			if j > 0 {
				e = E[i][j-1] - ext
				if h := H[i][j-1] - open; h > e {
					e = h
				}
			}
			if i > 0 {
				f = F[i-1][j] - ext
				if h := H[i-1][j] - open; h > f {
					f = h
				}
			}
			h := negInf
			if i > 0 && j > 0 {
				h = H[i-1][j-1] + s.Score(a[i-1], b[j-1])
			}
			if e > h {
				h = e
			}
			if f > h {
				h = f
			}
			H[i][j], E[i][j], F[i][j] = h, e, f
			if h > best {
				best = h
			}
		}
	}
	return best
}

func TestAlignmentFormat(t *testing.T) {
	s := NucleotideScheme(1, -3, 5, 2)
	a := []byte("ACGTACGT")
	b := []byte("ACGTACGT")
	al := SmithWaterman(codes(string(a)), codes(string(b)), s)
	out := al.Format(a, b, 60)
	if !strings.Contains(out, "Query  1") || !strings.Contains(out, "ACGTACGT") {
		t.Errorf("format output missing parts:\n%s", out)
	}
	if !strings.Contains(out, "||||||||") {
		t.Errorf("format midline wrong:\n%s", out)
	}
}

func TestOpsMerging(t *testing.T) {
	ops := appendOp(nil, OpMatch, 3)
	ops = appendOp(ops, OpMatch, 2)
	ops = appendOp(ops, OpDelete, 1)
	ops = appendOp(ops, OpMatch, 0) // no-op
	if len(ops) != 2 || ops[0].Len != 5 {
		t.Errorf("appendOp merging broken: %+v", ops)
	}
	rev := reverseOps([]Op{{OpMatch, 2}, {OpDelete, 1}, {OpMatch, 3}})
	if len(rev) != 3 || rev[0].Kind != OpMatch || rev[0].Len != 3 {
		t.Errorf("reverseOps broken: %+v", rev)
	}
	rev2 := reverseOps([]Op{{OpMatch, 2}, {OpMatch, 3}})
	if len(rev2) != 1 || rev2[0].Len != 5 {
		t.Errorf("reverseOps merge broken: %+v", rev2)
	}
}

func TestProteinAlignment(t *testing.T) {
	s := DefaultProtein()
	a := protCodes("MKWVTFISLLLLFSSAYS")
	al := SmithWaterman(a, a, s)
	if al.Score <= 0 {
		t.Fatal("self alignment should score positively")
	}
	want := 0
	for _, c := range a {
		want += s.Score(c, c)
	}
	if al.Score != want {
		t.Errorf("self score = %d, want %d", al.Score, want)
	}
}

func TestXDropNeverExceedsSW(t *testing.T) {
	s := DefaultNucleotide()
	f := func(rawA, rawB []byte, seedSel uint16) bool {
		if len(rawA) == 0 || len(rawB) == 0 {
			return true
		}
		a := make([]byte, len(rawA))
		for i, c := range rawA {
			a[i] = c & 3
		}
		b := make([]byte, len(rawB))
		for i, c := range rawB {
			b[i] = c & 3
		}
		ai := int(seedSel) % len(a)
		bi := int(seedSel>>8) % len(b)
		got, aFrom, aTo, bFrom, bTo := ExtendGapped(a, b, ai, bi, s, 15)
		if aFrom < 0 || aTo > len(a) || bFrom < 0 || bTo > len(b) {
			return false
		}
		if aFrom > ai || aTo <= ai || bFrom > bi || bTo <= bi {
			return false
		}
		// An anchored alignment can never beat the anchored optimum.
		return got <= anchoredOptimum(a, b, ai, bi, s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLoadMatrixFile(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/MINI"
	content := "# tiny test matrix\n   A  R\nA  5 -2\nR -2  6\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := LoadMatrixFile(path, 9, 2)
	if err != nil {
		t.Fatal(err)
	}
	if m.Name != "MINI" || m.GapOpen != 9 || m.GapExtend != 2 {
		t.Errorf("loaded scheme meta: %+v", m)
	}
	a, r := byte(seq.AAIndex('A')), byte(seq.AAIndex('R'))
	if m.Score(a, a) != 5 || m.Score(a, r) != -2 || m.Score(r, r) != 6 {
		t.Errorf("loaded scores wrong: %d %d %d", m.Score(a, a), m.Score(a, r), m.Score(r, r))
	}
	if _, err := LoadMatrixFile(dir+"/absent", 9, 2); err == nil {
		t.Error("missing file accepted")
	}
}
