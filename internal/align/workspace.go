package align

// Workspace holds reusable scratch buffers for the extension kernels,
// so a searcher that runs thousands of gapped extensions per subject
// allocates the DP rows and reversal buffers once instead of per
// seed. A nil *Workspace is valid everywhere one is accepted and
// falls back to per-call allocation. Workspaces are not safe for
// concurrent use; each search shard owns one.
type Workspace struct {
	h, e       []int
	prev, cur  []int
	revA, revB []byte
}

// dpRows returns two zeroed-length int rows of capacity >= n.
func (ws *Workspace) dpRows(n int) ([]int, []int) {
	if ws == nil {
		return make([]int, n), make([]int, n)
	}
	if cap(ws.h) < n {
		ws.h = make([]int, n)
		ws.e = make([]int, n)
	}
	return ws.h[:n], ws.e[:n]
}

// greedyRows returns the two diagonal-front rows of capacity >= n.
func (ws *Workspace) greedyRows(n int) ([]int, []int) {
	if ws == nil {
		return make([]int, n), make([]int, n)
	}
	if cap(ws.prev) < n {
		ws.prev = make([]int, n)
		ws.cur = make([]int, n)
	}
	return ws.prev[:n], ws.cur[:n]
}

// reversed returns p reversed, into one of the workspace's two
// reversal buffers (which selects between them, so the two operands
// of a two-sided extension can be live at once).
func (ws *Workspace) reversed(p []byte, which int) []byte {
	if ws == nil {
		return reverseBytes(p)
	}
	buf := &ws.revA
	if which == 1 {
		buf = &ws.revB
	}
	if cap(*buf) < len(p) {
		*buf = make([]byte, len(p))
	}
	out := (*buf)[:len(p)]
	for i, c := range p {
		out[len(p)-1-i] = c
	}
	return out
}
