package align

// Greedy gapped extension (Zhang, Schwartz, Wagner & Miller 2000) —
// the algorithm behind megablast. Instead of dynamic programming over
// a band, it tracks for each edit distance e the farthest-reaching
// point on every diagonal, which is dramatically faster when the two
// sequences are highly similar (few differences). Scores follow the
// greedy-compatible scheme: a match earns Match; every difference
// (mismatch or single-letter gap) advances the edit distance by one
// and the score by a fixed penalty, so maximizing score is equivalent
// to maximizing antidiagonal progress at minimal edit distance.

// GreedyScheme holds a greedy-compatible scoring scheme. With match
// reward a (even) and difference parameter b, a mismatch scores
// a/2 - b relative to nothing (i.e. mismatch penalty = b - a/2... see
// Mismatch) and a one-letter gap costs b. Zhang et al. show greedy
// extension is score-optimal exactly for this family.
type GreedyScheme struct {
	// Match is the match reward (must be positive and even).
	Match int
	// Diff is the per-difference parameter: score = Match*(i+j)/2 -
	// Diff*e for an extension consuming i and j letters with e
	// differences.
	Diff int
}

// NewGreedyScheme builds the greedy scheme equivalent to the given
// match reward and mismatch penalty (penalty < 0). A mismatch
// consumes one letter of each sequence and one edit, so Diff =
// match - mismatch makes Mismatch() come out exactly; the implied
// one-letter gap cost is then |mismatch| + match/2 (megablast's
// linear gap behaviour). match is doubled internally if odd so
// half-antidiagonal scores stay integral.
func NewGreedyScheme(match, mismatch int) GreedyScheme {
	if match <= 0 || mismatch >= 0 {
		panic("align: greedy scheme needs match > 0 and mismatch < 0")
	}
	if match%2 != 0 {
		match *= 2
		mismatch *= 2
	}
	return GreedyScheme{Match: match, Diff: match - mismatch}
}

// Mismatch returns the effective mismatch score of the scheme.
func (g GreedyScheme) Mismatch() int { return g.Match - g.Diff }

// GapPerLetter returns the effective cost (negative score) of a
// one-letter insertion or deletion.
func (g GreedyScheme) GapPerLetter() int { return g.Diff - g.Match/2 }

// score computes the greedy score for k = i+j consumed letters with e
// differences.
func (g GreedyScheme) score(k, e int) int { return g.Match*k/2 - g.Diff*e }

const greedyUnreached = -(1 << 29)

// GreedyExtendRight greedily extends an alignment of a[0:] vs b[0:]
// rightward from the implicit anchor before both, stopping when the
// score drops more than xdrop below the best. It returns the best
// score and the letters of a and b consumed at the best point.
func GreedyExtendRight(a, b []byte, g GreedyScheme, xdrop int) (best, aLen, bLen int) {
	return greedyExtendRight(nil, a, b, g, xdrop)
}

func greedyExtendRight(ws *Workspace, a, b []byte, g GreedyScheme, xdrop int) (best, aLen, bLen int) {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return 0, 0, 0
	}
	// r[d] = farthest antidiagonal k reached on diagonal d (d = i-j,
	// stored with offset) using the current edit distance e; prev
	// holds e-1.
	size := n + m + 3
	offset := m + 1
	prev, cur := ws.greedyRows(size)
	for i := range prev {
		prev[i] = greedyUnreached
		cur[i] = greedyUnreached
	}

	// e = 0: slide matches along the main diagonal.
	k := 0
	for k/2 < n && k/2 < m && a[k/2] == b[k/2] {
		k += 2
	}
	d0 := offset // diagonal 0
	prev[d0] = k
	best = g.score(k, 0)
	aLen, bLen = k/2, k/2
	if k/2 >= n || k/2 >= m {
		return best, aLen, bLen
	}

	lo, hi := 0, 0 // live diagonal window (relative to diagonal 0)
	for e := 1; e <= n+m; e++ {
		// Expand the candidate window by one diagonal on each side.
		newLo, newHi := lo-1, hi+1
		anyAlive := false
		for d := newLo; d <= newHi; d++ {
			di := d + offset
			// Farthest k on diagonal d with e edits comes from a
			// substitution (same diagonal, k+2), an insertion in a
			// (diagonal d-1, k+1) or a deletion (diagonal d+1, k+1).
			kBest := greedyUnreached
			if v := prev[di]; v != greedyUnreached && v+2 > kBest {
				kBest = v + 2
			}
			if di-1 >= 0 {
				if v := prev[di-1]; v != greedyUnreached && v+1 > kBest {
					kBest = v + 1
				}
			}
			if di+1 < size {
				if v := prev[di+1]; v != greedyUnreached && v+1 > kBest {
					kBest = v + 1
				}
			}
			if kBest == greedyUnreached {
				cur[di] = greedyUnreached
				continue
			}
			// Convert (k, d) to (i, j): i = (k+d)/2, j = (k-d)/2.
			i := (kBest + d) / 2
			j := (kBest - d) / 2
			if i < 0 || j < 0 || i > n || j > m {
				cur[di] = greedyUnreached
				continue
			}
			// Slide matches.
			for i < n && j < m && a[i] == b[j] {
				i++
				j++
				kBest += 2
			}
			sc := g.score(kBest, e)
			if sc < best-xdrop {
				cur[di] = greedyUnreached
				continue
			}
			cur[di] = kBest
			anyAlive = true
			if sc > best {
				best = sc
				aLen, bLen = i, j
			}
		}
		if !anyAlive {
			break
		}
		// Shrink the window to live diagonals.
		for newLo <= newHi && cur[newLo+offset] == greedyUnreached {
			newLo++
		}
		for newHi >= newLo && cur[newHi+offset] == greedyUnreached {
			newHi--
		}
		lo, hi = newLo, newHi
		prev, cur = cur, prev
		for d := lo - 1; d <= hi+1; d++ {
			if di := d + offset; di >= 0 && di < size {
				cur[di] = greedyUnreached
			}
		}
	}
	return best, aLen, bLen
}

// GreedyExtend performs the two-sided greedy extension around the
// anchored pair (a[ai], b[bi]), like ExtendGapped but with the greedy
// algorithm. The anchor pair itself must match for the scheme's
// accounting; if it does not, the anchor contributes a mismatch.
func GreedyExtend(a, b []byte, ai, bi int, g GreedyScheme, xdrop int) (score, aFrom, aTo, bFrom, bTo int) {
	return GreedyExtendWS(nil, a, b, ai, bi, g, xdrop)
}

// GreedyExtendWS is GreedyExtend with caller-pooled scratch (diagonal
// fronts and reversal buffers from ws). A nil ws behaves exactly like
// GreedyExtend.
func GreedyExtendWS(ws *Workspace, a, b []byte, ai, bi int, g GreedyScheme, xdrop int) (score, aFrom, aTo, bFrom, bTo int) {
	var anchor int
	if a[ai] == b[bi] {
		anchor = g.Match
	} else {
		anchor = g.Mismatch()
	}
	rBest, rA, rB := greedyExtendRight(ws, a[ai+1:], b[bi+1:], g, xdrop)
	lBest, lA, lB := greedyExtendRight(ws, ws.reversed(a[:ai], 0), ws.reversed(b[:bi], 1), g, xdrop)
	score = anchor + rBest + lBest
	return score, ai - lA, ai + 1 + rA, bi - lB, bi + 1 + rB
}
