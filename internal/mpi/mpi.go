// Package mpi is a small message-passing substrate in the spirit of
// the MPI subset mpiBLAST uses: ranked processes, tagged point-to-
// point Send/Recv with wildcard matching, and rank-0-rooted
// collectives. Two transports are provided: an in-process one
// (goroutines and channels) and a TCP one (router process), so the
// parallel BLAST code runs unchanged in one process or across many.
package mpi

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"
)

// Wildcards for Recv matching.
const (
	// AnySource matches a message from any rank.
	AnySource = -1
	// AnyTag matches a message with any tag.
	AnyTag = -1
)

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mpi: communicator closed")

// Message is a received message with its envelope.
type Message struct {
	From int
	Tag  int
	Data []byte
}

// Comm is a communicator endpoint bound to one rank.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks.
	Size() int
	// Send delivers data to rank to with the given tag. It may block
	// until the transport accepts the message but does not wait for a
	// matching Recv.
	Send(to, tag int, data []byte) error
	// Recv blocks until a message matching (from, tag) arrives.
	// AnySource / AnyTag act as wildcards.
	Recv(from, tag int) (Message, error)
	// Close shuts the endpoint down; blocked Recvs return ErrClosed.
	Close() error
}

// mailbox implements wildcard-matched receive queues shared by both
// transports. Waiters register matching channels so receives can be
// given deadlines (needed by fault-tolerant masters that must notice
// silent worker deaths).
type mailbox struct {
	mu      sync.Mutex
	pending []Message
	waiters []*waiter
	closed  bool
}

type waiter struct {
	from, tag int
	ch        chan Message // buffered(1); closed when the mailbox closes
}

func newMailbox() *mailbox { return &mailbox{} }

func envelopeMatches(from, tag int, m Message) bool {
	return (from == AnySource || m.From == from) && (tag == AnyTag || m.Tag == tag)
}

func (mb *mailbox) put(m Message) error {
	mb.mu.Lock()
	if mb.closed {
		mb.mu.Unlock()
		return ErrClosed
	}
	for i, w := range mb.waiters {
		if envelopeMatches(w.from, w.tag, m) {
			mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
			mb.mu.Unlock()
			w.ch <- m // buffered: never blocks
			return nil
		}
	}
	mb.pending = append(mb.pending, m)
	mb.mu.Unlock()
	return nil
}

func (mb *mailbox) get(from, tag int) (Message, error) {
	m, _, err := mb.getTimeout(from, tag, -1)
	return m, err
}

// getTimeout receives a matching message. d < 0 blocks indefinitely;
// otherwise ok=false reports that the deadline passed with no match.
func (mb *mailbox) getTimeout(from, tag int, d time.Duration) (m Message, ok bool, err error) {
	mb.mu.Lock()
	for i, pm := range mb.pending {
		if envelopeMatches(from, tag, pm) {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			mb.mu.Unlock()
			return pm, true, nil
		}
	}
	if mb.closed {
		mb.mu.Unlock()
		return Message{}, false, ErrClosed
	}
	w := &waiter{from: from, tag: tag, ch: make(chan Message, 1)}
	mb.waiters = append(mb.waiters, w)
	mb.mu.Unlock()

	if d < 0 {
		m, chOk := <-w.ch
		if !chOk {
			return Message{}, false, ErrClosed
		}
		return m, true, nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case m, chOk := <-w.ch:
		if !chOk {
			return Message{}, false, ErrClosed
		}
		return m, true, nil
	case <-timer.C:
		mb.mu.Lock()
		for i, x := range mb.waiters {
			if x == w {
				mb.waiters = append(mb.waiters[:i], mb.waiters[i+1:]...)
				mb.mu.Unlock()
				return Message{}, false, nil
			}
		}
		mb.mu.Unlock()
		// The waiter was already removed: either a put delivered a
		// message or close closed the channel; the blocking receive
		// resolves which.
		m, chOk := <-w.ch
		if !chOk {
			return Message{}, false, ErrClosed
		}
		return m, true, nil
	}
}

func (mb *mailbox) close() {
	mb.mu.Lock()
	mb.closed = true
	ws := mb.waiters
	mb.waiters = nil
	mb.mu.Unlock()
	for _, w := range ws {
		close(w.ch)
	}
}

// timeoutReceiver is implemented by both transports' communicators.
type timeoutReceiver interface {
	recvTimeout(from, tag int, d time.Duration) (Message, bool, error)
}

// RecvTimeout receives like Comm.Recv but gives up after d, returning
// ok=false. It lets masters detect silently-dead peers.
func RecvTimeout(c Comm, from, tag int, d time.Duration) (Message, bool, error) {
	tr, supported := c.(timeoutReceiver)
	if !supported {
		m, err := c.Recv(from, tag)
		return m, err == nil, err
	}
	return tr.recvTimeout(from, tag, d)
}

// SendGob gob-encodes v and sends it.
func SendGob(c Comm, to, tag int, v interface{}) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("mpi: encoding: %w", err)
	}
	return c.Send(to, tag, buf.Bytes())
}

// RecvGob receives a matching message and gob-decodes it into v,
// returning the envelope.
func RecvGob(c Comm, from, tag int, v interface{}) (Message, error) {
	m, err := c.Recv(from, tag)
	if err != nil {
		return m, err
	}
	if err := gob.NewDecoder(bytes.NewReader(m.Data)).Decode(v); err != nil {
		return m, fmt.Errorf("mpi: decoding: %w", err)
	}
	return m, nil
}
