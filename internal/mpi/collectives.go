package mpi

// Rank-0-rooted collectives built from point-to-point messages. Tags
// in the reserved range below must not be used by applications.
const (
	tagBarrier = -1000 - iota
	tagBcast
	tagGather
)

// Barrier blocks until every rank has entered it. Rank 0 collects one
// message from each rank and then releases them.
func Barrier(c Comm) error {
	if c.Size() == 1 {
		return nil
	}
	if c.Rank() == 0 {
		for i := 1; i < c.Size(); i++ {
			if _, err := c.Recv(AnySource, tagBarrier); err != nil {
				return err
			}
		}
		for i := 1; i < c.Size(); i++ {
			if err := c.Send(i, tagBarrier, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tagBarrier, nil); err != nil {
		return err
	}
	_, err := c.Recv(0, tagBarrier)
	return err
}

// Bcast distributes data from rank 0 to all ranks. Every rank returns
// the broadcast payload.
func Bcast(c Comm, data []byte) ([]byte, error) {
	if c.Rank() == 0 {
		for i := 1; i < c.Size(); i++ {
			if err := c.Send(i, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	m, err := c.Recv(0, tagBcast)
	if err != nil {
		return nil, err
	}
	return m.Data, nil
}

// Gather collects one payload from every rank at rank 0, indexed by
// rank. Non-root ranks return nil.
func Gather(c Comm, data []byte) ([][]byte, error) {
	if c.Rank() != 0 {
		return nil, c.Send(0, tagGather, data)
	}
	out := make([][]byte, c.Size())
	out[0] = data
	for i := 1; i < c.Size(); i++ {
		m, err := c.Recv(AnySource, tagGather)
		if err != nil {
			return nil, err
		}
		out[m.From] = m.Data
	}
	return out, nil
}
