package mpi

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// runWorld executes fn on every rank of an in-process world.
func runWorld(t *testing.T, size int, fn func(c Comm) error) {
	t.Helper()
	w, err := NewWorld(size)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(w.Comm(r))
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

// runTCPWorld executes fn on every rank over the TCP transport.
func runTCPWorld(t *testing.T, size int, fn func(c Comm) error) {
	t.Helper()
	router, err := StartRouter("127.0.0.1:0", size)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			c, err := Dial(router.Addr(), r, size)
			if err != nil {
				errs[r] = err
				return
			}
			defer c.Close()
			errs[r] = fn(c)
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func transports(t *testing.T) map[string]func(*testing.T, int, func(Comm) error) {
	return map[string]func(*testing.T, int, func(Comm) error){
		"inproc": runWorld,
		"tcp":    runTCPWorld,
	}
}

func TestPingPong(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			run(t, 2, func(c Comm) error {
				if c.Rank() == 0 {
					if err := c.Send(1, 7, []byte("ping")); err != nil {
						return err
					}
					m, err := c.Recv(1, 8)
					if err != nil {
						return err
					}
					if string(m.Data) != "pong" || m.From != 1 || m.Tag != 8 {
						return fmt.Errorf("bad reply %+v", m)
					}
					return nil
				}
				m, err := c.Recv(0, 7)
				if err != nil {
					return err
				}
				if string(m.Data) != "ping" {
					return fmt.Errorf("bad ping %q", m.Data)
				}
				return c.Send(0, 8, []byte("pong"))
			})
		})
	}
}

func TestWildcardRecv(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			const size = 4
			run(t, size, func(c Comm) error {
				if c.Rank() == 0 {
					seen := map[int]bool{}
					for i := 1; i < size; i++ {
						m, err := c.Recv(AnySource, AnyTag)
						if err != nil {
							return err
						}
						if seen[m.From] {
							return fmt.Errorf("duplicate message from %d", m.From)
						}
						seen[m.From] = true
						if m.Tag != 100+m.From {
							return fmt.Errorf("tag %d from rank %d", m.Tag, m.From)
						}
					}
					return nil
				}
				return c.Send(0, 100+c.Rank(), []byte{byte(c.Rank())})
			})
		})
	}
}

func TestTagMatching(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			run(t, 2, func(c Comm) error {
				if c.Rank() == 0 {
					// Send tag 2 first, then tag 1; receiver asks for
					// tag 1 first and must still get both correctly.
					if err := c.Send(1, 2, []byte("two")); err != nil {
						return err
					}
					return c.Send(1, 1, []byte("one"))
				}
				m1, err := c.Recv(0, 1)
				if err != nil {
					return err
				}
				if string(m1.Data) != "one" {
					return fmt.Errorf("tag 1 got %q", m1.Data)
				}
				m2, err := c.Recv(0, 2)
				if err != nil {
					return err
				}
				if string(m2.Data) != "two" {
					return fmt.Errorf("tag 2 got %q", m2.Data)
				}
				return nil
			})
		})
	}
}

func TestSelfSend(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			run(t, 1, func(c Comm) error {
				if err := c.Send(0, 5, []byte("loop")); err != nil {
					return err
				}
				m, err := c.Recv(0, 5)
				if err != nil {
					return err
				}
				if string(m.Data) != "loop" {
					return fmt.Errorf("self send got %q", m.Data)
				}
				return nil
			})
		})
	}
}

func TestBarrier(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			const size = 5
			var mu sync.Mutex
			entered := 0
			run(t, size, func(c Comm) error {
				mu.Lock()
				entered++
				mu.Unlock()
				if err := Barrier(c); err != nil {
					return err
				}
				mu.Lock()
				defer mu.Unlock()
				if entered != size {
					return fmt.Errorf("barrier released with %d/%d entered", entered, size)
				}
				return nil
			})
		})
	}
}

func TestBcast(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			run(t, 4, func(c Comm) error {
				var payload []byte
				if c.Rank() == 0 {
					payload = []byte("broadcast payload")
				}
				got, err := Bcast(c, payload)
				if err != nil {
					return err
				}
				if string(got) != "broadcast payload" {
					return fmt.Errorf("rank %d got %q", c.Rank(), got)
				}
				return nil
			})
		})
	}
}

func TestGather(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			const size = 4
			run(t, size, func(c Comm) error {
				data := []byte{byte(c.Rank() * 10)}
				out, err := Gather(c, data)
				if err != nil {
					return err
				}
				if c.Rank() != 0 {
					if out != nil {
						return fmt.Errorf("non-root got gather output")
					}
					return nil
				}
				for r := 0; r < size; r++ {
					if len(out[r]) != 1 || out[r][0] != byte(r*10) {
						return fmt.Errorf("gather[%d] = %v", r, out[r])
					}
				}
				return nil
			})
		})
	}
}

func TestGobRoundTrip(t *testing.T) {
	type task struct {
		ID    int
		Files []string
	}
	runWorld(t, 2, func(c Comm) error {
		if c.Rank() == 0 {
			return SendGob(c, 1, 3, task{ID: 42, Files: []string{"a", "b"}})
		}
		var got task
		if _, err := RecvGob(c, 0, 3, &got); err != nil {
			return err
		}
		if got.ID != 42 || len(got.Files) != 2 || got.Files[1] != "b" {
			return fmt.Errorf("gob round trip: %+v", got)
		}
		return nil
	})
}

func TestRecvAfterCloseReturnsErrClosed(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comm(1)
	done := make(chan error, 1)
	go func() {
		_, err := c.Recv(AnySource, AnyTag)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock on Close")
	}
}

func TestSendInvalidRank(t *testing.T) {
	w, _ := NewWorld(2)
	defer w.Close()
	c := w.Comm(0)
	if err := c.Send(5, 0, nil); err == nil {
		t.Error("send to rank 5 of 2 accepted")
	}
	if err := c.Send(-1, 0, nil); err == nil {
		t.Error("send to rank -1 accepted")
	}
}

func TestWorldSizeValidation(t *testing.T) {
	if _, err := NewWorld(0); err == nil {
		t.Error("world of size 0 accepted")
	}
}

func TestTCPEarlySendBeforePeerConnects(t *testing.T) {
	// Rank 0 connects and sends immediately; rank 1 connects late.
	// The router must queue the frame.
	router, err := StartRouter("127.0.0.1:0", 2)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	c0, err := Dial(router.Addr(), 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c0.Close()
	if err := c0.Send(1, 9, []byte("early")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	c1, err := Dial(router.Addr(), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	m, err := c1.Recv(0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if string(m.Data) != "early" {
		t.Errorf("got %q", m.Data)
	}
}

func TestManyMessagesStress(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			const size = 4
			const per = 200
			run(t, size, func(c Comm) error {
				if c.Rank() == 0 {
					total := 0
					sums := map[int]int{}
					for total < (size-1)*per {
						m, err := c.Recv(AnySource, AnyTag)
						if err != nil {
							return err
						}
						sums[m.From] += int(m.Data[0])
						total++
					}
					for r := 1; r < size; r++ {
						want := per * r
						if sums[r] != want {
							return fmt.Errorf("rank %d sum = %d, want %d", r, sums[r], want)
						}
					}
					return nil
				}
				for i := 0; i < per; i++ {
					if err := c.Send(0, i, []byte{byte(c.Rank())}); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

func TestDialRetryWaitsForRouter(t *testing.T) {
	addr := "127.0.0.1:0"
	// Pick a concrete free port by binding and releasing it.
	probe, err := StartRouter(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	concrete := probe.Addr()
	probe.Close()

	done := make(chan error, 1)
	go func() {
		c, err := DialRetry(concrete, 0, 2, 5*time.Second)
		if err == nil {
			c.Close()
		}
		done <- err
	}()
	// Start the router late; the dialer must keep retrying.
	time.Sleep(300 * time.Millisecond)
	router, err := StartRouter(concrete, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if err := <-done; err != nil {
		t.Fatalf("DialRetry failed: %v", err)
	}
}

func TestDialRetryTimesOut(t *testing.T) {
	if _, err := DialRetry("127.0.0.1:1", 0, 2, 300*time.Millisecond); err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestRecvTimeout(t *testing.T) {
	for name, run := range transports(t) {
		t.Run(name, func(t *testing.T) {
			run(t, 2, func(c Comm) error {
				if c.Rank() == 0 {
					// Nothing matching tag 99 yet: must time out.
					start := time.Now()
					_, ok, err := RecvTimeout(c, AnySource, 99, 80*time.Millisecond)
					if err != nil || ok {
						return fmt.Errorf("expected timeout, got ok=%v err=%v", ok, err)
					}
					if time.Since(start) < 60*time.Millisecond {
						return fmt.Errorf("timed out too early")
					}
					// Tell the peer to send, then receive with a deadline.
					if err := c.Send(1, 1, nil); err != nil {
						return err
					}
					m, ok, err := RecvTimeout(c, 1, 99, 2*time.Second)
					if err != nil || !ok {
						return fmt.Errorf("expected message, got ok=%v err=%v", ok, err)
					}
					if string(m.Data) != "late" {
						return fmt.Errorf("got %q", m.Data)
					}
					return nil
				}
				if _, err := c.Recv(0, 1); err != nil {
					return err
				}
				return c.Send(0, 99, []byte("late"))
			})
		})
	}
}

func TestRecvTimeoutDoesNotStealMismatched(t *testing.T) {
	w, err := NewWorld(2)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	c0, c1 := w.Comm(0), w.Comm(1)
	if err := c1.Send(0, 5, []byte("keep")); err != nil {
		t.Fatal(err)
	}
	// Waiting for tag 6 must not consume the tag-5 message.
	if _, ok, err := RecvTimeout(c0, AnySource, 6, 50*time.Millisecond); ok || err != nil {
		t.Fatalf("tag 6 wait: ok=%v err=%v", ok, err)
	}
	m, err := c0.Recv(AnySource, 5)
	if err != nil || string(m.Data) != "keep" {
		t.Fatalf("tag 5 message lost: %v %q", err, m.Data)
	}
}

func TestRecvTimeoutUnblocksOnClose(t *testing.T) {
	w, err := NewWorld(1)
	if err != nil {
		t.Fatal(err)
	}
	c := w.Comm(0)
	done := make(chan error, 1)
	go func() {
		_, _, err := RecvTimeout(c, AnySource, AnyTag, 10*time.Second)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	c.Close()
	select {
	case err := <-done:
		if err != ErrClosed {
			t.Errorf("err = %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("RecvTimeout did not unblock on Close")
	}
}

func TestMailboxOrderAndConservationQuick(t *testing.T) {
	// Property: for any sequence of sends, wildcard receives return
	// every message exactly once, in send order.
	f := func(tags []uint8) bool {
		w, err := NewWorld(2)
		if err != nil {
			return false
		}
		defer w.Close()
		c0, c1 := w.Comm(0), w.Comm(1)
		for i, tg := range tags {
			if err := c0.Send(1, int(tg), []byte{byte(i)}); err != nil {
				return false
			}
		}
		for i := range tags {
			m, err := c1.Recv(AnySource, AnyTag)
			if err != nil {
				return false
			}
			if int(m.Data[0]) != i || m.Tag != int(tags[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMailboxSelectiveRecvQuick(t *testing.T) {
	// Property: receiving by specific tag never loses other-tag
	// messages — they all arrive afterwards via wildcard.
	f := func(tags []uint8, want uint8) bool {
		w, err := NewWorld(2)
		if err != nil {
			return false
		}
		defer w.Close()
		c0, c1 := w.Comm(0), w.Comm(1)
		matching := 0
		for i, tg := range tags {
			if err := c0.Send(1, int(tg), []byte{byte(i)}); err != nil {
				return false
			}
			if tg == want {
				matching++
			}
		}
		for k := 0; k < matching; k++ {
			m, err := c1.Recv(AnySource, int(want))
			if err != nil || m.Tag != int(want) {
				return false
			}
		}
		// The rest must still be there.
		rest := len(tags) - matching
		for k := 0; k < rest; k++ {
			m, err := c1.Recv(AnySource, AnyTag)
			if err != nil || m.Tag == int(want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
