package mpi

import (
	"fmt"
	"time"
)

// World is the in-process transport: size communicators sharing
// message queues in one address space. It is the transport the tests,
// examples and the traced Figure 4 runs use.
type World struct {
	boxes []*mailbox
}

// NewWorld creates an in-process world with size ranks.
func NewWorld(size int) (*World, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: world size %d < 1", size)
	}
	w := &World{boxes: make([]*mailbox, size)}
	for i := range w.boxes {
		w.boxes[i] = newMailbox()
	}
	return w, nil
}

// Comm returns the communicator endpoint for rank.
func (w *World) Comm(rank int) Comm {
	if rank < 0 || rank >= len(w.boxes) {
		panic(fmt.Sprintf("mpi: rank %d out of range [0,%d)", rank, len(w.boxes)))
	}
	return &inprocComm{world: w, rank: rank}
}

// Close shuts down every rank's mailbox.
func (w *World) Close() {
	for _, mb := range w.boxes {
		mb.close()
	}
}

type inprocComm struct {
	world *World
	rank  int
}

func (c *inprocComm) Rank() int { return c.rank }
func (c *inprocComm) Size() int { return len(c.world.boxes) }

func (c *inprocComm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.Size() {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	// Copy so the sender may reuse its buffer, matching the TCP
	// transport's semantics.
	return c.world.boxes[to].put(Message{From: c.rank, Tag: tag, Data: append([]byte(nil), data...)})
}

func (c *inprocComm) Recv(from, tag int) (Message, error) {
	return c.world.boxes[c.rank].get(from, tag)
}

func (c *inprocComm) Close() error {
	c.world.boxes[c.rank].close()
	return nil
}

func (c *inprocComm) recvTimeout(from, tag int, d time.Duration) (Message, bool, error) {
	return c.world.boxes[c.rank].getTimeout(from, tag, d)
}
