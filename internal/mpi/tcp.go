package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP transport: a router process accepts one connection per rank and
// forwards tagged frames between them. This mirrors how a LAM/MPICH
// job of the paper's era multiplexed messages over the interconnect.
//
// Wire frame: magic(4) from(4) to(4) tag(4) len(4) payload(len),
// all little-endian. A hello frame (to == helloTo) announces a
// client's rank after connecting.

const (
	frameMagic = 0x7061696f // "paio"
	helloTo    = -2
)

func writeFrame(w io.Writer, from, to, tag int, payload []byte) error {
	var hdr [20]byte
	binary.LittleEndian.PutUint32(hdr[0:], frameMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(int32(from)))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(int32(to)))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(int32(tag)))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

func readFrame(r io.Reader) (from, to, tag int, payload []byte, err error) {
	var hdr [20]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != frameMagic {
		err = fmt.Errorf("mpi: bad frame magic")
		return
	}
	from = int(int32(binary.LittleEndian.Uint32(hdr[4:])))
	to = int(int32(binary.LittleEndian.Uint32(hdr[8:])))
	tag = int(int32(binary.LittleEndian.Uint32(hdr[12:])))
	n := binary.LittleEndian.Uint32(hdr[16:])
	if n > 1<<30 {
		err = fmt.Errorf("mpi: frame of %d bytes exceeds limit", n)
		return
	}
	payload = make([]byte, n)
	_, err = io.ReadFull(r, payload)
	return
}

// Router forwards frames between rank connections.
type Router struct {
	ln      net.Listener
	size    int
	mu      sync.Mutex
	conns   map[int]net.Conn
	wmus    map[int]*sync.Mutex
	pending map[int][]pendingFrame // frames for ranks that have not connected yet
	done    chan struct{}
	errs    chan error
}

type pendingFrame struct {
	from, tag int
	payload   []byte
}

// StartRouter listens on addr (e.g. "127.0.0.1:0") for size ranks and
// begins forwarding. It returns immediately; clients may connect at
// any time afterwards.
func StartRouter(addr string, size int) (*Router, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: router size %d < 1", size)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	r := &Router{
		ln:      ln,
		size:    size,
		conns:   make(map[int]net.Conn),
		wmus:    make(map[int]*sync.Mutex),
		pending: make(map[int][]pendingFrame),
		done:    make(chan struct{}),
		errs:    make(chan error, size+1),
	}
	go r.acceptLoop()
	return r, nil
}

// Addr returns the router's listen address for clients to dial.
func (r *Router) Addr() string { return r.ln.Addr().String() }

func (r *Router) acceptLoop() {
	for i := 0; i < r.size; i++ {
		conn, err := r.ln.Accept()
		if err != nil {
			select {
			case <-r.done:
			default:
				r.errs <- err
			}
			return
		}
		go r.serve(conn)
	}
}

func (r *Router) serve(conn net.Conn) {
	// First frame must be the hello announcing the client's rank.
	from, to, _, _, err := readFrame(conn)
	if err != nil || to != helloTo || from < 0 || from >= r.size {
		conn.Close()
		return
	}
	rank := from
	r.mu.Lock()
	if _, dup := r.conns[rank]; dup {
		r.mu.Unlock()
		conn.Close()
		return
	}
	r.conns[rank] = conn
	wmu := &sync.Mutex{}
	r.wmus[rank] = wmu
	queued := r.pending[rank]
	delete(r.pending, rank)
	r.mu.Unlock()
	// Flush frames that arrived before this rank connected.
	for _, pf := range queued {
		wmu.Lock()
		err := writeFrame(conn, pf.from, rank, pf.tag, pf.payload)
		wmu.Unlock()
		if err != nil {
			return
		}
	}
	for {
		from, to, tag, payload, err := readFrame(conn)
		if err != nil {
			return
		}
		r.mu.Lock()
		dst, ok := r.conns[to]
		if !ok {
			// Destination not yet connected: queue the frame.
			r.pending[to] = append(r.pending[to], pendingFrame{from: from, tag: tag, payload: payload})
			r.mu.Unlock()
			continue
		}
		dmu := r.wmus[to]
		r.mu.Unlock()
		dmu.Lock()
		err = writeFrame(dst, from, to, tag, payload)
		dmu.Unlock()
		if err != nil {
			return
		}
	}
}

// Close shuts the router down.
func (r *Router) Close() error {
	close(r.done)
	err := r.ln.Close()
	r.mu.Lock()
	for _, c := range r.conns {
		c.Close()
	}
	r.mu.Unlock()
	return err
}

// tcpComm is a Comm over a router connection.
type tcpComm struct {
	rank, size int
	conn       net.Conn
	box        *mailbox
	wmu        sync.Mutex
	closeOnce  sync.Once
}

// Dial connects rank to the router at addr in a world of size ranks.
// It returns once the connection is established; use Barrier to
// synchronize rank startup when needed.
func Dial(addr string, rank, size int) (Comm, error) {
	if rank < 0 || rank >= size {
		return nil, fmt.Errorf("mpi: rank %d out of range [0,%d)", rank, size)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := &tcpComm{rank: rank, size: size, conn: conn, box: newMailbox()}
	if err := writeFrame(conn, rank, helloTo, 0, nil); err != nil {
		conn.Close()
		return nil, err
	}
	go c.readLoop()
	return c, nil
}

func (c *tcpComm) readLoop() {
	for {
		from, _, tag, payload, err := readFrame(c.conn)
		if err != nil {
			c.box.close()
			return
		}
		c.box.put(Message{From: from, Tag: tag, Data: payload})
	}
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

func (c *tcpComm) Send(to, tag int, data []byte) error {
	if to < 0 || to >= c.size {
		return fmt.Errorf("mpi: send to invalid rank %d", to)
	}
	if to == c.rank {
		// Loopback without a network round trip.
		return c.box.put(Message{From: c.rank, Tag: tag, Data: append([]byte(nil), data...)})
	}
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return writeFrame(c.conn, c.rank, to, tag, data)
}

func (c *tcpComm) Recv(from, tag int) (Message, error) {
	return c.box.get(from, tag)
}

func (c *tcpComm) Close() error {
	var err error
	c.closeOnce.Do(func() {
		c.box.close()
		err = c.conn.Close()
	})
	return err
}

// DialRetry dials the router, retrying until it accepts or the
// timeout elapses — workers in a distributed job typically start
// before the master has brought the router up.
func DialRetry(addr string, rank, size int, timeout time.Duration) (Comm, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := Dial(addr, rank, size)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("mpi: router %s not reachable within %v: %w", addr, timeout, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

func (c *tcpComm) recvTimeout(from, tag int, d time.Duration) (Message, bool, error) {
	return c.box.getTimeout(from, tag, d)
}
