package readahead

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
	"testing"

	"pario/internal/chio"
	"pario/internal/iotrace"
)

// writeFile creates name on fs with the given content.
func writeFile(t *testing.T, fs chio.FileSystem, name string, data []byte) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// pattern returns n deterministic but position-dependent bytes.
func pattern(n int, salt byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*31 + salt
	}
	return p
}

func TestReadThroughMatchesBackend(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(10_000, 1)
	writeFile(t, mem, "db", data)
	ra := Wrap(mem, WithBlockSize(1024), WithCapacity(4), WithWindow(2))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Mixed-size reads at mixed offsets, including re-reads.
	for _, c := range []struct{ off, n int }{
		{0, 100}, {100, 1024}, {1124, 3000}, {0, 100}, {9000, 1000}, {500, 8500},
	} {
		got := make([]byte, c.n)
		n, err := f.ReadAt(got, int64(c.off))
		if err != nil && err != io.EOF {
			t.Fatalf("ReadAt(%d, %d): %v", c.off, c.n, err)
		}
		if !bytes.Equal(got[:n], data[c.off:c.off+n]) {
			t.Fatalf("ReadAt(%d, %d): data mismatch", c.off, c.n)
		}
		if n != c.n {
			t.Fatalf("ReadAt(%d, %d): short read %d", c.off, c.n, n)
		}
	}
}

func TestReadAfterWriteInvalidation(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(4096, 1)
	writeFile(t, mem, "db", data)
	ra := Wrap(mem, WithBlockSize(1024), WithWindow(0))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	// Populate the cache.
	buf := make([]byte, 4096)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite the middle through the layer; overlapping blocks must
	// drop so the next read sees fresh bytes.
	upd := pattern(1500, 99)
	if _, err := f.WriteAt(upd, 1000); err != nil {
		t.Fatal(err)
	}
	copy(data[1000:], upd)
	got := make([]byte, 4096)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read after write returned stale cached data")
	}
}

func TestWriteGrowsFileInvalidatesTail(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(1500, 1) // 1.5 blocks: block 1 is a cached short tail
	writeFile(t, mem, "db", data)
	ra := Wrap(mem, WithBlockSize(1024), WithWindow(0))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1500)
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	// Append past the cached EOF tail without overlapping it.
	ext := pattern(1000, 7)
	if _, err := f.WriteAt(ext, 1500); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 2500)
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	want := append(append([]byte{}, data...), ext...)
	if !bytes.Equal(got, want) {
		t.Fatal("growth write left a stale short tail block cached")
	}
}

func TestEOFAtBlockBoundary(t *testing.T) {
	mem := chio.NewMemFS()
	const bs = 1024
	for _, size := range []int{bs, 3 * bs, bs - 1, 3*bs + 1} {
		name := fmt.Sprintf("f%d", size)
		data := pattern(size, byte(size))
		writeFile(t, mem, name, data)
		ra := Wrap(mem, WithBlockSize(bs), WithWindow(2))
		f, err := ra.Open(name)
		if err != nil {
			t.Fatal(err)
		}
		// Full read returns everything.
		got := make([]byte, size)
		if n, err := f.ReadAt(got, 0); n != size || (err != nil && err != io.EOF) {
			t.Fatalf("size %d: full read got (%d, %v)", size, n, err)
		} else if !bytes.Equal(got, data) {
			t.Fatalf("size %d: full read data mismatch", size)
		}
		// Read past EOF returns the tail plus io.EOF.
		got = make([]byte, 100)
		n, err := f.ReadAt(got, int64(size)-10)
		if n != 10 || err != io.EOF {
			t.Fatalf("size %d: tail read got (%d, %v), want (10, EOF)", size, n, err)
		}
		if !bytes.Equal(got[:10], data[size-10:]) {
			t.Fatalf("size %d: tail read data mismatch", size)
		}
		// Read starting exactly at EOF.
		if n, err := f.ReadAt(got, int64(size)); n != 0 || err != io.EOF {
			t.Fatalf("size %d: at-EOF read got (%d, %v), want (0, EOF)", size, n, err)
		}
		f.Close()
	}
}

func TestConcurrentReaders(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(64*1024, 3)
	writeFile(t, mem, "db", data)
	stats := &iotrace.CacheStats{}
	ra := Wrap(mem, WithBlockSize(4096), WithCapacity(8), WithWindow(3), WithStats(stats))
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f, err := ra.Open("db")
			if err != nil {
				errs[g] = err
				return
			}
			defer f.Close()
			buf := make([]byte, 1000)
			for off := 0; off+len(buf) <= len(data); off += len(buf) {
				n, err := f.ReadAt(buf, int64(off))
				if err != nil {
					errs[g] = err
					return
				}
				if !bytes.Equal(buf[:n], data[off:off+n]) {
					errs[g] = fmt.Errorf("goroutine %d: mismatch at %d", g, off)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	snap := stats.Snapshot()
	if snap.Hits == 0 || snap.Misses == 0 {
		t.Errorf("expected both hits and misses, got %+v", snap)
	}
}

func TestPrefetchErrorDoesNotCorruptLaterReads(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(32*1024, 5)
	writeFile(t, mem, "db", data)
	fault := chio.NewFaultFS(mem)
	ra := Wrap(fault, WithBlockSize(1024), WithWindow(4))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 512)
	// Start a sequential scan so prefetches are in flight, then arm the
	// fault so some of them fail mid-flight, then heal and continue.
	boom := errors.New("mid-prefetch fault")
	for off := 0; off+len(buf) <= len(data); off += len(buf) {
		switch off {
		case 2048:
			fault.Arm(boom)
		case 8192:
			fault.Disarm()
		}
		n, err := f.ReadAt(buf, int64(off))
		if err != nil {
			if !errors.Is(err, boom) {
				t.Fatalf("off %d: unexpected error %v", off, err)
			}
			// Expected while armed; data must not be consumed.
			continue
		}
		if !bytes.Equal(buf[:n], data[off:off+n]) {
			t.Fatalf("off %d: corrupted read after prefetch fault", off)
		}
	}
	// After healing, a full re-read matches exactly.
	got := make([]byte, len(data))
	if _, err := f.ReadAt(got, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("full re-read after fault mismatch")
	}
}

func TestSequentialScanPrefetches(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(16*1024, 9)
	writeFile(t, mem, "db", data)
	stats := &iotrace.CacheStats{}
	ra := Wrap(mem, WithBlockSize(1024), WithWindow(4), WithStats(stats))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 256)
	for off := 0; off+len(buf) <= len(data); off += len(buf) {
		if _, err := f.ReadAt(buf, int64(off)); err != nil {
			t.Fatal(err)
		}
	}
	snap := stats.Snapshot()
	if snap.PrefetchIssued == 0 {
		t.Error("sequential scan issued no prefetches")
	}
	if snap.Hits == 0 {
		t.Error("sequential scan produced no cache hits")
	}
}

func TestCreateDropsCache(t *testing.T) {
	mem := chio.NewMemFS()
	writeFile(t, mem, "db", pattern(2048, 1))
	ra := Wrap(mem, WithBlockSize(1024), WithWindow(0))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2048)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	// Recreate with different content through the layer.
	fresh := pattern(2048, 42)
	writeFile(t, ra, "db", fresh)
	f2, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if _, err := f2.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, fresh) {
		t.Fatal("Create left stale blocks cached")
	}
}

func TestBackendName(t *testing.T) {
	ra := Wrap(chio.NewMemFS())
	if ra.BackendName() != "mem+ra" {
		t.Fatalf("BackendName = %q", ra.BackendName())
	}
}
