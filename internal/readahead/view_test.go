package readahead

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"pario/internal/chio"
	"pario/internal/iotrace"
)

func openView(t *testing.T, f chio.File) chio.ViewReaderAt {
	t.Helper()
	v, ok := f.(chio.ViewReaderAt)
	if !ok {
		t.Fatalf("readahead file %T does not implement chio.ViewReaderAt", f)
	}
	return v
}

// TestReadViewBorrowsOnCacheHit pins the zero-copy contract: views
// within a single cached block are borrowed (no copy), their bytes
// match ReadAt's, the borrow counter advances, and block-straddling
// or past-EOF views degrade to the ReadAt semantics.
func TestReadViewBorrowsOnCacheHit(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(10_000, 7)
	writeFile(t, mem, "db", data)
	stats := &iotrace.CacheStats{}
	ra := Wrap(mem, WithBlockSize(1024), WithCapacity(16), WithWindow(2), WithStats(stats))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vr := openView(t, f)

	// Sequential single-block views: every one should borrow.
	for off := int64(0); off < 4096; off += 512 {
		v, err := vr.ReadView(off, 512)
		if err != nil {
			t.Fatalf("ReadView(%d, 512): %v", off, err)
		}
		if !v.Borrowed {
			t.Fatalf("ReadView(%d, 512): expected a borrowed view", off)
		}
		if v.Stale() {
			t.Fatalf("ReadView(%d, 512): fresh view reports stale", off)
		}
		if !bytes.Equal(v.Data, data[off:off+512]) {
			t.Fatalf("ReadView(%d, 512): data mismatch", off)
		}
	}
	s := stats.Snapshot()
	if s.BorrowHits != 8 || s.BorrowCopies != 0 {
		t.Fatalf("after 8 single-block views: borrowed=%d copied=%d, want 8/0", s.BorrowHits, s.BorrowCopies)
	}

	// A block-straddling view falls back to an owned copy.
	v, err := vr.ReadView(1000, 100)
	if err != nil {
		t.Fatalf("straddling ReadView: %v", err)
	}
	if v.Borrowed {
		t.Fatal("block-straddling view should be owned, not borrowed")
	}
	if !bytes.Equal(v.Data, data[1000:1100]) {
		t.Fatal("straddling ReadView: data mismatch")
	}
	if got := stats.Snapshot().BorrowCopies; got != 1 {
		t.Fatalf("straddling view: copies=%d, want 1", got)
	}

	// Past-EOF view: short data plus io.EOF, like ReadAt.
	v, err = vr.ReadView(int64(len(data))-10, 100)
	if err != io.EOF {
		t.Fatalf("past-EOF ReadView: err=%v, want io.EOF", err)
	}
	if !bytes.Equal(v.Data, data[len(data)-10:]) {
		t.Fatal("past-EOF ReadView: data mismatch")
	}
	if v, err = vr.ReadView(int64(len(data))+100, 10); err != io.EOF || len(v.Data) != 0 {
		t.Fatalf("fully-past-EOF ReadView: (%d bytes, %v), want (0, io.EOF)", len(v.Data), err)
	}
}

// TestReadViewStaleAfterWrite exercises the borrow lifetime under
// concurrent invalidation (run with -race): readers hold borrowed
// views across writes that invalidate their range. The contract is
// that a superseding write flips Stale to true, a post-write re-read
// observes the new bytes, and the original borrowed bytes are never
// mutated in place — a holder that took a snapshot of its view always
// finds those exact bytes later.
func TestReadViewStaleAfterWrite(t *testing.T) {
	mem := chio.NewMemFS()
	data := pattern(4096, 3)
	writeFile(t, mem, "db", data)
	ra := Wrap(mem, WithBlockSize(1024), WithCapacity(8))
	f, err := ra.Open("db")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	vr := openView(t, f)

	// Deterministic single-goroutine core of the contract first.
	v, err := vr.ReadView(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Borrowed || v.Stale() {
		t.Fatalf("initial view: borrowed=%v stale=%v, want true/false", v.Borrowed, v.Stale())
	}
	before := append([]byte(nil), v.Data...)
	mutated := pattern(200, 99)
	if _, err := f.WriteAt(mutated, 100); err != nil {
		t.Fatal(err)
	}
	if !v.Stale() {
		t.Fatal("view not stale after a write superseded its range")
	}
	if !bytes.Equal(v.Data, before) {
		t.Fatal("borrowed bytes mutated in place by a write")
	}
	v2, err := vr.ReadView(100, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2.Data, mutated) {
		t.Fatal("re-read after staleness did not observe the written bytes")
	}

	// Concurrent readers and writers: every held view must either stay
	// fresh or report stale, and held bytes must never change.
	var readers, writers sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			off := int64(r * 1024)
			for {
				select {
				case <-stop:
					return
				default:
				}
				v, err := vr.ReadView(off, 256)
				if err != nil {
					t.Errorf("reader %d: %v", r, err)
					return
				}
				snap := append([]byte(nil), v.Data...)
				fresh := !v.Stale()
				// Hold the view across whatever the writers do.
				if !bytes.Equal(v.Data, snap) {
					t.Errorf("reader %d: held view bytes changed", r)
					return
				}
				if fresh && v.Stale() {
					// Went stale while held: fall back to a fresh copy.
					if _, err := vr.ReadView(off, 256); err != nil {
						t.Errorf("reader %d: stale re-read: %v", r, err)
						return
					}
				}
			}
		}(r)
	}
	for w := 0; w < 2; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			buf := pattern(256, byte(50+w))
			for i := 0; i < 200; i++ {
				if _, err := f.WriteAt(buf, int64((i%4)*1024+w*256)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()
}
