// Package readahead layers a client-side block cache and a sequential
// prefetcher over any chio.FileSystem. BLAST workers scan their
// database fragments mostly sequentially in reads much smaller than a
// stripe, so the striped backends pay one round of server RPCs per
// small read. This layer fetches whole blocks (defaulting to the
// paper's 64 KB stripe unit), serves subsequent small reads from an
// LRU cache, and — once it detects a sequential scan — pipelines the
// next several blocks asynchronously so the network transfer overlaps
// with the worker's compute, the same overlap the paper attributes the
// parallel-I/O speedup to.
//
// Consistency: writes through this layer invalidate every overlapping
// cached block (plus any cached short tail block, which a growing file
// makes stale). Writes by *other* clients to the same backend are not
// observed; the layer is intended for the paper's workload of
// replicated read-mostly database fragments.
package readahead

import (
	"container/list"
	"context"
	"fmt"
	"io"
	"sync"

	"pario/internal/chio"
	"pario/internal/iotrace"
)

// Defaults for options left unset.
const (
	// DefaultBlockSize is the cache block size — the paper's stripe
	// unit, so one block fetch maps onto one stripe-aligned vectored
	// read round.
	DefaultBlockSize = 64 * 1024
	// DefaultCapacity is the cache capacity in blocks (8 MB at the
	// default block size).
	DefaultCapacity = 128
	// DefaultWindow is how many blocks ahead the prefetcher runs once a
	// sequential scan is detected.
	DefaultWindow = 4
)

// Option tunes a readahead FS.
type Option func(*FS)

// WithBlockSize sets the cache block size in bytes. Larger blocks
// amortize more per-RPC overhead per fetch; the sweet spot is a small
// multiple of stripe size times the data-server count.
func WithBlockSize(n int64) Option {
	return func(fs *FS) {
		if n > 0 {
			fs.blockSize = n
		}
	}
}

// WithCapacity sets the cache capacity in blocks.
func WithCapacity(blocks int) Option {
	return func(fs *FS) {
		if blocks > 0 {
			fs.capacity = blocks
		}
	}
}

// WithWindow sets the prefetch depth in blocks; 0 disables
// prefetching (the cache still serves re-reads).
func WithWindow(blocks int) Option {
	return func(fs *FS) {
		if blocks >= 0 {
			fs.window = blocks
		}
	}
}

// WithStats installs a shared counter sink (cache hits/misses,
// prefetch issued/wasted). Useful to aggregate across workers.
func WithStats(s *iotrace.CacheStats) Option {
	return func(fs *FS) {
		if s != nil {
			fs.stats = s
		}
	}
}

// FS wraps an inner chio.FileSystem with the block cache and
// prefetcher. Views bound to different contexts (WithContext) share
// one cache.
type FS struct {
	inner     chio.FileSystem
	blockSize int64
	capacity  int
	window    int
	stats     *iotrace.CacheStats
	cache     *blockCache
}

// Wrap layers readahead over inner.
func Wrap(inner chio.FileSystem, opts ...Option) *FS {
	fs := &FS{
		inner:     inner,
		blockSize: DefaultBlockSize,
		capacity:  DefaultCapacity,
		window:    DefaultWindow,
	}
	for _, o := range opts {
		if o != nil {
			o(fs)
		}
	}
	if fs.stats == nil {
		fs.stats = &iotrace.CacheStats{}
	}
	fs.cache = newBlockCache(fs.capacity)
	return fs
}

// Stats returns the FS's counter sink (the shared one if WithStats was
// used, a private one otherwise).
func (fs *FS) Stats() *iotrace.CacheStats { return fs.stats }

// BackendName implements chio.FileSystem.
func (fs *FS) BackendName() string { return fs.inner.BackendName() + "+ra" }

// Create implements chio.FileSystem; any cached blocks of the name are
// dropped (Create truncates).
func (fs *FS) Create(name string) (chio.File, error) {
	fs.cache.invalidateAll(name)
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, inner: f, name: name}, nil
}

// Open implements chio.FileSystem.
func (fs *FS) Open(name string) (chio.File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: fs, inner: f, name: name}, nil
}

// Stat implements chio.FileSystem.
func (fs *FS) Stat(name string) (chio.FileInfo, error) { return fs.inner.Stat(name) }

// Remove implements chio.FileSystem; cached blocks of the name are
// dropped.
func (fs *FS) Remove(name string) error {
	fs.cache.invalidateAll(name)
	return fs.inner.Remove(name)
}

// List implements chio.FileSystem.
func (fs *FS) List(prefix string) ([]chio.FileInfo, error) { return fs.inner.List(prefix) }

// WithContext implements chio.ContextBinder: the returned view shares
// this FS's cache and counters, with the inner backend bound to ctx
// when it supports binding.
func (fs *FS) WithContext(ctx context.Context) chio.FileSystem {
	inner := chio.BindContext(fs.inner, ctx)
	if inner == fs.inner {
		return fs
	}
	f2 := *fs
	f2.inner = inner
	return &f2
}

// blockSpan returns the indices of the first and last block touched
// by [off, off+length) — the one block-range computation shared by the
// read, prefetch-planning, and write-invalidation paths. hi is
// inclusive; a zero-length range spans only its starting block.
func blockSpan(off, length, blockSize int64) (lo, hi int64) {
	lo = off / blockSize
	hi = lo
	if length > 0 {
		hi = (off + length - 1) / blockSize
	}
	return lo, hi
}

// blockKey identifies one cached block.
type blockKey struct {
	name string
	idx  int64
}

// block is one cached block. data and eof are immutable once the block
// is published; accessed is written under the cache mutex.
type block struct {
	key        blockKey
	data       []byte
	eof        bool // fetch hit EOF: the block is the file's (possibly short) tail
	prefetched bool // fetched speculatively
	accessed   bool // served at least one read (wasted-prefetch accounting)
	elem       *list.Element
}

// fetch tracks one in-flight block fetch so concurrent readers (and
// the prefetcher) coalesce onto a single backend read. b and err are
// written before done is closed.
type fetch struct {
	done chan struct{}
	b    *block
	err  error
}

// blockCache is the shared LRU block cache.
type blockCache struct {
	mu       sync.Mutex
	capacity int
	blocks   map[blockKey]*block
	lru      *list.List // front = most recently used
	inflight map[blockKey]*fetch
	// gen counts invalidations per name; a fetch started before an
	// invalidation must not populate the cache after it (its data may
	// predate the write).
	gen map[string]uint64
}

func newBlockCache(capacity int) *blockCache {
	if capacity < 1 {
		capacity = 1
	}
	return &blockCache{
		capacity: capacity,
		blocks:   make(map[blockKey]*block),
		lru:      list.New(),
		inflight: make(map[blockKey]*fetch),
		gen:      make(map[string]uint64),
	}
}

// remove drops b from the cache. Caller holds mu.
func (c *blockCache) remove(b *block) {
	delete(c.blocks, b.key)
	c.lru.Remove(b.elem)
}

// insert publishes b, evicting LRU victims over capacity. Caller
// holds mu.
func (c *blockCache) insert(b *block, stats *iotrace.CacheStats) {
	if old, ok := c.blocks[b.key]; ok {
		c.remove(old)
	}
	b.elem = c.lru.PushFront(b)
	c.blocks[b.key] = b
	for len(c.blocks) > c.capacity {
		victim := c.lru.Back().Value.(*block)
		c.remove(victim)
		if victim.prefetched && !victim.accessed {
			stats.PrefetchWasted()
		}
	}
}

// invalidateRange drops every block overlapping [off, off+length) of
// name, plus every short (EOF) block of name — a write that grows the
// file makes a cached short tail stale even without overlapping it.
func (c *blockCache) invalidateRange(name string, off, length, blockSize int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen[name]++
	lo, hi := blockSpan(off, length, blockSize)
	for key, b := range c.blocks {
		if key.name != name {
			continue
		}
		if b.eof || (length > 0 && key.idx >= lo && key.idx <= hi) {
			c.remove(b)
		}
	}
}

// invalidateAll drops every block of name.
func (c *blockCache) invalidateAll(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen[name]++
	for key, b := range c.blocks {
		if key.name == name {
			c.remove(b)
		}
	}
}

// getBlock returns the cached (or freshly fetched) block idx of name,
// reading through inner on a miss. A block being delivered by an
// in-flight prefetch counts as a hit; a failed in-flight fetch falls
// back to a synchronous retry so a transient prefetch error never
// surfaces to a reader that could succeed.
func (fs *FS) getBlock(inner chio.File, name string, idx int64) (*block, error) {
	c := fs.cache
	key := blockKey{name, idx}
	c.mu.Lock()
	if b, ok := c.blocks[key]; ok {
		c.lru.MoveToFront(b.elem)
		b.accessed = true
		c.mu.Unlock()
		fs.stats.Hit()
		return b, nil
	}
	fl := c.inflight[key]
	c.mu.Unlock()
	if fl != nil {
		<-fl.done
		if fl.err == nil {
			fs.stats.Hit()
			c.mu.Lock()
			fl.b.accessed = true
			c.mu.Unlock()
			return fl.b, nil
		}
	}
	fs.stats.Miss()
	return fs.fetchBlock(inner, name, idx, false)
}

// fetchBlock reads block idx of name through inner and publishes it,
// deduplicating against concurrent fetches of the same block.
func (fs *FS) fetchBlock(inner chio.File, name string, idx int64, prefetched bool) (*block, error) {
	c := fs.cache
	key := blockKey{name, idx}
	c.mu.Lock()
	if b, ok := c.blocks[key]; ok { // raced with another fetch
		c.lru.MoveToFront(b.elem)
		if !prefetched {
			b.accessed = true
		}
		c.mu.Unlock()
		return b, nil
	}
	if fl, ok := c.inflight[key]; ok {
		c.mu.Unlock()
		<-fl.done
		if fl.err != nil {
			return nil, fl.err
		}
		if !prefetched {
			c.mu.Lock()
			fl.b.accessed = true
			c.mu.Unlock()
		}
		return fl.b, nil
	}
	fl := &fetch{done: make(chan struct{})}
	c.inflight[key] = fl
	gen := c.gen[name]
	c.mu.Unlock()

	buf := make([]byte, fs.blockSize)
	n, err := inner.ReadAt(buf, idx*fs.blockSize)
	eof := err == io.EOF
	if eof {
		err = nil
	}
	if err != nil {
		c.mu.Lock()
		delete(c.inflight, key)
		c.mu.Unlock()
		if prefetched {
			fs.stats.PrefetchAborted()
		}
		fl.err = err
		close(fl.done)
		return nil, err
	}
	b := &block{
		key:        key,
		data:       buf[:n:n],
		eof:        eof,
		prefetched: prefetched,
		accessed:   !prefetched,
	}
	c.mu.Lock()
	delete(c.inflight, key)
	// Publish only if no write invalidated the name while we fetched.
	if c.gen[name] == gen {
		c.insert(b, fs.stats)
	} else if prefetched {
		fs.stats.PrefetchAborted()
	}
	c.mu.Unlock()
	fl.b = b
	close(fl.done)
	return b, nil
}

// generation returns the current invalidation generation for name.
// Borrowed views capture it at read time and compare later to detect
// writes that superseded their bytes.
func (c *blockCache) generation(name string) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.gen[name]
}

// uncached returns the block indices in [from, to] (inclusive) of
// name that are neither cached nor already being fetched — the blocks
// a demand read or prefetch would actually go to the backend for.
func (c *blockCache) uncached(name string, from, to int64) []int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []int64
	for idx := from; idx <= to; idx++ {
		key := blockKey{name, idx}
		if _, ok := c.blocks[key]; ok {
			continue
		}
		if _, ok := c.inflight[key]; ok {
			continue
		}
		out = append(out, idx)
	}
	return out
}

// blockSegs converts block indices to block-aligned byte ranges,
// merging consecutive indices.
func blockSegs(idxs []int64, blockSize int64) []chio.Seg {
	var out []chio.Seg
	for _, idx := range idxs {
		if k := len(out); k > 0 && out[k-1].Off+out[k-1].Len == idx*blockSize {
			out[k-1].Len += blockSize
		} else {
			out = append(out, chio.Seg{Off: idx * blockSize, Len: blockSize})
		}
	}
	return out
}

// prefetch speculatively fetches the given blocks of name in the
// background. Errors are dropped: the reader that eventually needs a
// failed block retries synchronously.
func (fs *FS) prefetch(inner chio.File, name string, idxs []int64) {
	for _, idx := range idxs {
		fs.stats.PrefetchIssued()
		go fs.fetchBlock(inner, name, idx, true)
	}
}

// file is an open handle through the readahead layer.
type file struct {
	fs    *FS
	inner chio.File
	name  string

	mu   sync.Mutex
	off  int64 // streaming position for Read/Write/Seek
	next int64 // block index a sequential scan would touch next
}

// Name implements chio.File.
func (f *file) Name() string { return f.name }

// NextRanges reports the block-aligned byte ranges the prefetcher
// would fetch after a sequential read of [off, off+length): the
// planned window following that read, minus blocks already cached or
// in flight. It issues no I/O. Collective-I/O layers consume it (via
// the chio.RangeHinter forwarding in ReadAt) to learn which fetches
// are about to arrive; it is also the one place the window-peeking
// arithmetic lives, shared with the invalidation path through
// blockSpan.
func (f *file) NextRanges(off, length int64) []chio.Seg {
	if off < 0 || f.fs.window <= 0 {
		return nil
	}
	_, last := blockSpan(off, length, f.fs.blockSize)
	idxs := f.fs.cache.uncached(f.name, last+1, last+int64(f.fs.window))
	return blockSegs(idxs, f.fs.blockSize)
}

// ReadAt implements io.ReaderAt through the block cache. A read that
// continues the previous one (block-wise) is treated as a sequential
// scan and triggers prefetch of the following window.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("readahead: negative read offset")
	}
	if len(p) == 0 {
		return 0, nil
	}
	bs := f.fs.blockSize
	f.planRead(off, int64(len(p)))

	n := 0
	for n < len(p) {
		pos := off + int64(n)
		idx := pos / bs
		b, err := f.fs.getBlock(f.inner, f.name, idx)
		if err != nil {
			return n, err
		}
		blockOff := pos - idx*bs
		if blockOff >= int64(len(b.data)) {
			// Short (EOF) block exhausted — or a stale handle read past
			// the end of a full non-EOF block, which also means EOF here.
			return n, io.EOF
		}
		c := copy(p[n:], b.data[blockOff:])
		n += c
		if b.eof && n < len(p) && blockOff+int64(c) >= int64(len(b.data)) {
			return n, io.EOF
		}
	}
	return n, nil
}

// planRead runs the shared pre-read bookkeeping for ReadAt and
// ReadView. Sequential-scan detection: the read starts in the block
// the previous read ended in or the one after it; if so, fire the
// prefetch before serving the read so the next blocks' fetches
// overlap this one's. It also announces the round's expected block
// fetches — this read's misses plus the planned window — to a
// collective layer below, so it can close its merge round as soon as
// those ranges register instead of waiting out its batching timer.
func (f *file) planRead(off, length int64) {
	bs := f.fs.blockSize
	firstBlock, lastBlock := blockSpan(off, length, bs)
	f.mu.Lock()
	seq := firstBlock == f.next || firstBlock == f.next-1
	f.next = lastBlock + 1
	f.mu.Unlock()
	var planned []int64
	if seq && f.fs.window > 0 {
		planned = f.fs.cache.uncached(f.name, lastBlock+1, lastBlock+int64(f.fs.window))
	}
	if h, ok := f.inner.(chio.RangeHinter); ok {
		want := f.fs.cache.uncached(f.name, firstBlock, lastBlock)
		want = append(want, planned...)
		if len(want) > 0 {
			h.HintRanges(blockSegs(want, bs))
		}
	}
	if len(planned) > 0 {
		f.fs.prefetch(f.inner, f.name, planned)
	}
}

// ReadView implements chio.ViewReaderAt. A range contained in a single
// cache block is served as a borrowed slice of the block's bytes with
// no copy: published blocks are immutable (invalidation drops cache
// references, never rewrites data), so the slice stays valid for as
// long as the caller holds it, and the generation captured here lets
// View.Stale report when a write has since superseded the range. A
// range straddling blocks falls back to an owned copy through ReadAt.
// Both paths run the same sequential-detection and prefetch logic, so
// a scan through ReadView prefetches exactly like one through ReadAt.
func (f *file) ReadView(off, n int64) (chio.View, error) {
	if off < 0 {
		return chio.View{}, fmt.Errorf("readahead: negative read offset")
	}
	if n == 0 {
		return chio.OwnedView(nil), nil
	}
	bs := f.fs.blockSize
	firstBlock, lastBlock := blockSpan(off, n, bs)
	if firstBlock != lastBlock {
		f.fs.stats.BorrowCopy()
		buf := make([]byte, n)
		m, err := f.ReadAt(buf, off)
		if err != nil && err != io.EOF {
			return chio.View{}, err
		}
		return chio.OwnedView(buf[:m]), err
	}
	// Capture the generation before the block lookup: a write racing
	// this read can only make the view look stale, never fresh.
	gen := f.fs.cache.generation(f.name)
	f.planRead(off, n)
	b, err := f.fs.getBlock(f.inner, f.name, firstBlock)
	if err != nil {
		return chio.View{}, err
	}
	blockOff := off - firstBlock*bs
	if blockOff >= int64(len(b.data)) {
		return chio.View{}, io.EOF
	}
	data := b.data[blockOff:]
	if int64(len(data)) >= n {
		data = data[:n]
	} else {
		err = io.EOF // short (EOF) block: serve what exists
	}
	f.fs.stats.BorrowHit()
	cache, name := f.fs.cache, f.name
	return chio.NewBorrowedView(data, func() bool {
		return cache.generation(name) != gen
	}), err
}

// WriteAt implements io.WriterAt: the write goes straight through, and
// every cached block it touches (plus any cached EOF tail) is dropped
// so subsequent reads refetch fresh bytes.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	n, err := f.inner.WriteAt(p, off)
	if n > 0 {
		f.fs.cache.invalidateRange(f.name, off, int64(n), f.fs.blockSize)
	}
	return n, err
}

// Read implements io.Reader at the streaming position.
func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Write implements io.Writer at the streaming position.
func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

// Seek implements io.Seeker. SeekEnd delegates to the inner file for
// the authoritative size.
func (f *file) Seek(offset int64, whence int) (int64, error) {
	if whence == io.SeekEnd {
		pos, err := f.inner.Seek(offset, io.SeekEnd)
		if err != nil {
			return 0, err
		}
		f.mu.Lock()
		f.off = pos
		f.mu.Unlock()
		return pos, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.off + offset
	default:
		return 0, fmt.Errorf("readahead: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("readahead: negative seek position")
	}
	f.off = next
	return next, nil
}

// Close closes the inner file. Cached blocks persist (they belong to
// the FS, not the handle); in-flight prefetches against the closed
// handle fail harmlessly and are retried by later readers.
func (f *file) Close() error { return f.inner.Close() }
