package workload

import (
	"bytes"
	"io"
	"testing"

	"pario/internal/blastdb"
	"pario/internal/chio"
	"pario/internal/seq"
)

func TestSourceDeterministic(t *testing.T) {
	spec := NtLike("nt", 200_000, 7)
	a, b := NewSource(spec), NewSource(spec)
	for {
		sa, errA := a.Next()
		sb, errB := b.Next()
		if (errA == io.EOF) != (errB == io.EOF) {
			t.Fatal("streams ended at different points")
		}
		if errA == io.EOF {
			break
		}
		if sa.ID != sb.ID || !bytes.Equal(sa.Data, sb.Data) {
			t.Fatal("same seed produced different sequences")
		}
	}
	la, ca := a.Generated()
	lb, cb := b.Generated()
	if la != lb || ca != cb {
		t.Fatalf("totals differ: %d/%d vs %d/%d", la, ca, lb, cb)
	}
}

func TestSourceHitsTargetSize(t *testing.T) {
	spec := NtLike("nt", 500_000, 3)
	src := NewSource(spec)
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		}
	}
	letters, count := src.Generated()
	// The last sequence may overshoot by at most one minimum-length
	// sequence.
	if letters < 500_000 || letters > 500_000+200_001 {
		t.Errorf("generated %d letters for 500k target", letters)
	}
	if count == 0 {
		t.Error("no sequences generated")
	}
	// Mean length should be in the rough vicinity of the spec; the
	// log-normal is heavy-tailed so allow a wide band.
	mean := float64(letters) / float64(count)
	if mean < 300 || mean > 6000 {
		t.Errorf("mean length %.0f far from spec 1530", mean)
	}
}

func TestSequencesAreValidDNA(t *testing.T) {
	src := NewSource(NtLike("nt", 100_000, 9))
	for {
		s, err := src.Next()
		if err == io.EOF {
			break
		}
		if s.Kind != seq.Nucleotide {
			t.Fatal("wrong kind")
		}
		if err := s.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestCompositionVaries(t *testing.T) {
	src := NewSource(NtLike("nt", 300_000, 11))
	var gcs []float64
	for {
		s, err := src.Next()
		if err == io.EOF {
			break
		}
		gc := 0
		for _, b := range s.Data {
			if b == 'G' || b == 'C' {
				gc++
			}
		}
		gcs = append(gcs, float64(gc)/float64(len(s.Data)))
	}
	min, max := 1.0, 0.0
	for _, g := range gcs {
		if g < min {
			min = g
		}
		if g > max {
			max = g
		}
	}
	if max-min < 0.1 {
		t.Errorf("GC content too uniform: min %.2f max %.2f", min, max)
	}
	if min < 0.2 || max > 0.8 {
		t.Errorf("GC content implausible: min %.2f max %.2f", min, max)
	}
}

func TestWriteFasta(t *testing.T) {
	var buf bytes.Buffer
	letters, count, err := WriteFasta(&buf, NtLike("nt", 50_000, 5))
	if err != nil {
		t.Fatal(err)
	}
	if letters == 0 || count == 0 {
		t.Fatal("nothing generated")
	}
	parsed, err := seq.NewFastaReader(&buf, seq.Nucleotide).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed) != count {
		t.Errorf("FASTA has %d records, generator says %d", len(parsed), count)
	}
	var total int64
	for _, s := range parsed {
		total += int64(s.Len())
	}
	if total != letters {
		t.Errorf("FASTA letters %d vs generator %d", total, letters)
	}
}

func TestBuildFormatsDatabase(t *testing.T) {
	fs := chio.NewMemFS()
	a, err := Build(fs, NtLike("nt", 400_000, 13), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Fragments) != 4 {
		t.Fatalf("fragments = %d", len(a.Fragments))
	}
	back, err := blastdb.ReadAlias(fs, "nt")
	if err != nil {
		t.Fatal(err)
	}
	if back.Letters != a.Letters || back.Seqs != a.Seqs {
		t.Errorf("alias mismatch: %+v vs %+v", back, a)
	}
	// Fragments are balanced.
	var min, max int64 = 1 << 60, 0
	for _, fi := range a.Fragments {
		if fi.Letters < min {
			min = fi.Letters
		}
		if fi.Letters > max {
			max = fi.Letters
		}
	}
	if max-min > 200_001 {
		t.Errorf("imbalanced fragments: %d..%d", min, max)
	}
	if err := checkReadable(fs, back); err != nil {
		t.Error(err)
	}
}

func checkReadable(fs chio.FileSystem, a *blastdb.Alias) error {
	frags, err := blastdb.OpenAll(fs, a)
	if err != nil {
		return err
	}
	for _, fr := range frags {
		if _, err := fr.Sequence(0); err != nil {
			return err
		}
		fr.Close()
	}
	return nil
}

func TestBuildValidation(t *testing.T) {
	if _, err := Build(chio.NewMemFS(), NtLike("x", 1000, 1), 0); err == nil {
		t.Error("zero fragments accepted")
	}
}

func TestExtractQuery(t *testing.T) {
	fs := chio.NewMemFS()
	if _, err := Build(fs, NtLike("nt", 300_000, 17), 2); err != nil {
		t.Fatal(err)
	}
	q, err := ExtractQuery(fs, "nt", 568, 99)
	if err != nil {
		t.Fatal(err)
	}
	if q.Len() != 568 {
		t.Fatalf("query length = %d", q.Len())
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic for the same seed, different for another.
	q2, err := ExtractQuery(fs, "nt", 568, 99)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(q.Data, q2.Data) {
		t.Error("same seed gave different queries")
	}
	q3, err := ExtractQuery(fs, "nt", 568, 100)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(q.Data, q3.Data) {
		t.Error("different seed gave the same query")
	}
}

func TestExtractQueryTooLong(t *testing.T) {
	fs := chio.NewMemFS()
	if _, err := Build(fs, NtLike("nt", 50_000, 19), 1); err != nil {
		t.Fatal(err)
	}
	if _, err := ExtractQuery(fs, "nt", 10_000_000, 1); err == nil {
		t.Error("impossible query length accepted")
	}
}
