// Package workload generates the synthetic stand-in for the NCBI nt
// database (which is not redistributable at experiment scale) and
// extracts query sequences from it, reproducing the paper's setup: a
// 568-letter nucleotide query drawn from a real sequence, searched
// against a multi-gigabyte non-redundant nucleotide database. Only
// the size and shape of the data matter to the I/O study, so the
// generator matches nt's statistics (sequence count, mean length,
// skewed length distribution, per-sequence composition bias) rather
// than its biological content.
package workload

import (
	"fmt"
	"io"
	"math"

	"pario/internal/blastdb"
	"pario/internal/chio"
	"pario/internal/seq"
	"pario/internal/util"
)

// DBSpec describes a synthetic database.
type DBSpec struct {
	// Name is the database title (alias file name stem).
	Name string
	// TotalLetters is the approximate database size in bases (the
	// paper's nt: ~2.7 GB).
	TotalLetters int64
	// MeanLen is the mean sequence length (nt 2003: ~1530 bases).
	MeanLen int
	// SigmaLog is the log-normal shape parameter of the length
	// distribution (~1.0 matches nt's long tail).
	SigmaLog float64
	// Seed makes generation reproducible.
	Seed uint64
}

// NtLike returns the spec used throughout the experiments: an nt-
// shaped database scaled to totalLetters.
func NtLike(name string, totalLetters int64, seed uint64) DBSpec {
	return DBSpec{
		Name:         name,
		TotalLetters: totalLetters,
		MeanLen:      1530,
		SigmaLog:     1.0,
		Seed:         seed,
	}
}

// Source streams synthetic sequences until TotalLetters is reached.
type Source struct {
	spec      DBSpec
	rng       *util.RNG
	generated int64
	count     int
	mu        float64
}

// NewSource starts a deterministic sequence stream for spec.
func NewSource(spec DBSpec) *Source {
	if spec.MeanLen <= 0 {
		spec.MeanLen = 1530
	}
	if spec.SigmaLog <= 0 {
		spec.SigmaLog = 1.0
	}
	// Log-normal with mean MeanLen: mu = ln(mean) - sigma^2/2.
	mu := math.Log(float64(spec.MeanLen)) - spec.SigmaLog*spec.SigmaLog/2
	return &Source{spec: spec, rng: util.NewRNG(spec.Seed), mu: mu}
}

// normal draws a standard normal deviate (Box-Muller).
func (s *Source) normal() float64 {
	u1 := s.rng.Float64()
	for u1 == 0 {
		u1 = s.rng.Float64()
	}
	u2 := s.rng.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// nextLen draws a sequence length from the clamped log-normal.
func (s *Source) nextLen() int {
	l := int(math.Exp(s.mu + s.spec.SigmaLog*s.normal()))
	if l < 100 {
		l = 100
	}
	if l > 200_000 {
		l = 200_000
	}
	return l
}

// Next returns the next synthetic sequence, or io.EOF once the
// database has reached its target size.
func (s *Source) Next() (*seq.Sequence, error) {
	if s.generated >= s.spec.TotalLetters {
		return nil, io.EOF
	}
	n := s.nextLen()
	if rem := s.spec.TotalLetters - s.generated; int64(n) > rem {
		n = int(rem)
		if n < 100 {
			n = 100
		}
	}
	// Per-sequence GC bias in [0.32, 0.68], like real genomic data.
	gc := 0.32 + 0.36*s.rng.Float64()
	data := make([]byte, n)
	for i := range data {
		r := s.rng.Float64()
		switch {
		case r < gc/2:
			data[i] = 'G'
		case r < gc:
			data[i] = 'C'
		case r < gc+(1-gc)/2:
			data[i] = 'A'
		default:
			data[i] = 'T'
		}
	}
	s.count++
	s.generated += int64(n)
	return &seq.Sequence{
		ID:   fmt.Sprintf("synth|%s|%07d", s.spec.Name, s.count),
		Desc: fmt.Sprintf("synthetic nt-like sequence %d, %d bp", s.count, n),
		Kind: seq.Nucleotide,
		Data: data,
	}, nil
}

// Generated reports how many letters and sequences have been emitted.
func (s *Source) Generated() (letters int64, sequences int) {
	return s.generated, s.count
}

// WriteFasta streams the whole synthetic database as FASTA.
func WriteFasta(w io.Writer, spec DBSpec) (letters int64, sequences int, err error) {
	src := NewSource(spec)
	for {
		sq, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, 0, err
		}
		if err := seq.WriteFasta(w, 70, sq); err != nil {
			return 0, 0, err
		}
	}
	letters, sequences = src.Generated()
	return letters, sequences, nil
}

// Build formats a synthetic database with the given fragment count
// directly onto fs (no intermediate FASTA file).
func Build(fs chio.FileSystem, spec DBSpec, fragments int) (*blastdb.Alias, error) {
	if fragments < 1 {
		return nil, fmt.Errorf("workload: fragment count %d < 1", fragments)
	}
	writers := make([]*blastdb.FragmentWriter, fragments)
	paths := make([]string, fragments)
	for i := range writers {
		paths[i] = blastdb.FragmentPath(spec.Name, i)
		f, err := fs.Create(paths[i])
		if err != nil {
			return nil, err
		}
		w, err := blastdb.NewFragmentWriter(f, seq.Nucleotide)
		if err != nil {
			f.Close()
			return nil, err
		}
		writers[i] = w
	}
	a := &blastdb.Alias{Title: spec.Name, Kind: seq.Nucleotide}
	src := NewSource(spec)
	for {
		sq, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		best := 0
		for i := 1; i < fragments; i++ {
			if writers[i].Letters() < writers[best].Letters() {
				best = i
			}
		}
		if err := writers[best].Append(sq); err != nil {
			return nil, err
		}
		a.Seqs++
		a.Letters += int64(sq.Len())
	}
	for i, w := range writers {
		a.Fragments = append(a.Fragments, blastdb.FragmentInfo{
			Path:    paths[i],
			Seqs:    int64(w.NumSequences()),
			Letters: w.Letters(),
		})
		if err := w.Close(); err != nil {
			return nil, err
		}
	}
	if err := a.Save(fs, spec.Name); err != nil {
		return nil, err
	}
	return a, nil
}

// ExtractQuery draws a query of the given length from the database,
// the way the paper extracted its 568-letter query from ecoli.nt: a
// random subsequence of a random database sequence long enough to
// contain it.
func ExtractQuery(fs chio.FileSystem, dbName string, length int, seed uint64) (*seq.Sequence, error) {
	a, err := blastdb.ReadAlias(fs, dbName)
	if err != nil {
		return nil, err
	}
	rng := util.NewRNG(seed)
	frags, err := blastdb.OpenAll(fs, a)
	if err != nil {
		return nil, err
	}
	defer func() {
		for _, fr := range frags {
			fr.Close()
		}
	}()
	// Scan fragments in a random order for a sequence >= length.
	for _, fi := range rng.Perm(len(frags)) {
		fr := frags[fi]
		n := fr.NumSequences()
		for _, si := range rng.Perm(n) {
			s, err := fr.Sequence(si)
			if err != nil {
				return nil, err
			}
			if s.Len() >= length {
				start := 0
				if s.Len() > length {
					start = rng.Intn(s.Len() - length)
				}
				q := s.Subsequence(start, start+length)
				q.ID = fmt.Sprintf("query|%dbp|from|%s", length, s.ID)
				return q, nil
			}
		}
	}
	return nil, fmt.Errorf("workload: no sequence of length >= %d in %s", length, dbName)
}
