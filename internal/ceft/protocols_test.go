package ceft

import (
	"bytes"
	"testing"

	"pario/internal/chio"
	"pario/internal/pvfs"
)

// startMirrored launches a CEFT cluster whose primary servers know
// their mirror partners (required by the server-side protocols).
func startMirrored(t *testing.T, g int, stripe int64, opts Options) *cluster {
	t.Helper()
	mgr, err := pvfs.StartMetaServer(pvfs.MetaConfig{Addr: "127.0.0.1:0", NumServers: g, StripeSize: stripe})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{mgr: mgr, g: g}
	// Mirrors first.
	mirrorAddrs := make([]string, g)
	mirrorServers := make([]*pvfs.DataServer, g)
	mirrorStores := make([]*chio.MemFS, g)
	for i := 0; i < g; i++ {
		store := chio.NewMemFS()
		ds, err := pvfs.StartDataServer(pvfs.DataServerConfig{ID: g + i, Addr: "127.0.0.1:0", Store: store})
		if err != nil {
			t.Fatal(err)
		}
		mirrorServers[i] = ds
		mirrorStores[i] = store
		mirrorAddrs[i] = ds.Addr()
	}
	var prim []string
	for i := 0; i < g; i++ {
		store := chio.NewMemFS()
		ds, err := pvfs.StartDataServer(pvfs.DataServerConfig{
			ID: i, Addr: "127.0.0.1:0", Store: store, MirrorAddr: mirrorAddrs[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		c.servers = append(c.servers, ds)
		c.stores = append(c.stores, store)
		prim = append(prim, ds.Addr())
	}
	c.servers = append(c.servers, mirrorServers...)
	c.stores = append(c.stores, mirrorStores...)
	cl, err := Dial(mgr.Addr(), prim, mirrorAddrs, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.client = cl
	t.Cleanup(func() {
		cl.Close()
		for _, ds := range c.servers {
			ds.Close()
		}
		mgr.Close()
	})
	return c
}

// checkMirrored verifies both groups hold identical pieces and reads
// round-trip.
func checkMirrored(t *testing.T, c *cluster, data []byte) {
	t.Helper()
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("read back corrupted data")
	}
	for i := 0; i < c.g; i++ {
		pf, err := c.stores[i].List("")
		if err != nil || len(pf) == 0 {
			t.Fatalf("primary %d pieces: %v %v", i, pf, err)
		}
		mf, err := c.stores[c.g+i].List("")
		if err != nil || len(mf) != len(pf) {
			t.Fatalf("mirror %d pieces: %v (primary has %d)", i, mf, len(pf))
		}
		for k := range pf {
			pd, _ := chio.ReadFull(c.stores[i], pf[k].Name)
			md, _ := chio.ReadFull(c.stores[c.g+i], mf[k].Name)
			if !bytes.Equal(pd, md) {
				t.Errorf("pair %d piece %s differs between groups", i, pf[k].Name)
			}
		}
	}
}

func TestWriteProtocols(t *testing.T) {
	for _, proto := range []WriteProtocol{ClientSync, ClientAsync, ServerSync, ServerAsync} {
		t.Run(proto.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.WriteProtocol = proto
			c := startMirrored(t, 2, 512, opts)
			data := payload(40_000)
			f, err := c.client.Create("f")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(data); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil { // settles async protocols
				t.Fatal(err)
			}
			checkMirrored(t, c, data)
		})
	}
}

func TestServerSyncWithoutMirrorConfigFails(t *testing.T) {
	// A cluster whose primaries have no MirrorAddr must reject the
	// server-side protocols instead of silently losing redundancy.
	opts := DefaultOptions()
	opts.WriteProtocol = ServerSync
	c := start(t, 2, 512, opts, false) // plain cluster, no MirrorAddr
	f, err := c.client.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(payload(1000)); err == nil {
		t.Error("server-sync write succeeded without mirror configuration")
	}
}

func TestServerAsyncFlushSurfacesForwardErrors(t *testing.T) {
	opts := DefaultOptions()
	opts.WriteProtocol = ServerAsync
	c := startMirrored(t, 2, 512, opts)
	// Create while the mirror group is alive (Create clears pieces on
	// both groups), then kill the mirrors so forwards fail.
	f, err := c.client.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	for i := c.g; i < 2*c.g; i++ {
		c.servers[i].Close()
	}
	if _, err := f.Write(payload(2000)); err != nil {
		// The local write should still succeed (ack precedes forward).
		t.Fatalf("server-async local write failed: %v", err)
	}
	if err := f.Close(); err == nil {
		t.Error("flush reported no error although the mirror group is down")
	}
}

func TestWriteProtocolString(t *testing.T) {
	if ClientSync.String() != "client-sync" || ServerAsync.String() != "server-async" {
		t.Error("protocol names wrong")
	}
	if WriteProtocol(9).String() == "" {
		t.Error("unknown protocol string empty")
	}
}

func TestOverwriteWithServerProtocols(t *testing.T) {
	opts := DefaultOptions()
	opts.WriteProtocol = ServerSync
	c := startMirrored(t, 2, 256, opts)
	first := payload(10_000)
	if err := chio.WriteFull(c.client, "f", first); err != nil {
		t.Fatal(err)
	}
	second := payload(5_000)
	for i := range second {
		second[i] ^= 0xAA
	}
	if err := chio.WriteFull(c.client, "f", second); err != nil {
		t.Fatal(err)
	}
	checkMirrored(t, c, second)
}

func TestDegradedReadAfterServerFailure(t *testing.T) {
	// CEFT's core fault-tolerance promise: losing any single data
	// server must not lose data — reads fail over to the mirror pair.
	opts := DefaultOptions()
	opts.SkipHotSpots = false
	c := startMirrored(t, 2, 512, opts)
	data := payload(30_000)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// Kill primary server 0.
	c.servers[0].Close()
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read corrupted data")
	}
	if c.client.Failovers() == 0 {
		t.Error("no failovers recorded although a server was down")
	}
}

func TestDegradedReadMirrorFailure(t *testing.T) {
	// Losing a mirror server must be equally invisible (doubled reads
	// route half the range through the mirror group).
	opts := DefaultOptions()
	opts.SkipHotSpots = false
	c := startMirrored(t, 2, 512, opts)
	data := payload(30_000)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	c.servers[2*c.g-1].Close() // last mirror server
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatalf("degraded read failed: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("degraded read corrupted data")
	}
}

func TestWholePairDownFailsCleanly(t *testing.T) {
	// Losing both members of a mirroring pair is unrecoverable and
	// must surface an error rather than silent corruption.
	opts := DefaultOptions()
	opts.SkipHotSpots = false
	c := startMirrored(t, 2, 512, opts)
	data := payload(30_000)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	c.servers[0].Close()   // primary 0
	c.servers[c.g].Close() // mirror 0
	if _, err := chio.ReadFull(c.client, "f"); err == nil {
		t.Fatal("read succeeded with an entire mirror pair down")
	}
}
