package ceft

import (
	"bytes"
	"context"
	"errors"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"pario/internal/chio"
	"pario/internal/pvfs"
	"pario/internal/util"
)

// cluster is a CEFT deployment: mgr + G primary + G mirror servers.
type cluster struct {
	mgr     *pvfs.MetaServer
	servers []*pvfs.DataServer // 0..G-1 primary, G..2G-1 mirror
	stores  []*chio.MemFS
	client  *Client
	g       int
}

// start launches a cluster. heartbeats=false keeps load reports fully
// under test control via InjectLoad.
func start(t *testing.T, g int, stripe int64, opts Options, heartbeats bool) *cluster {
	t.Helper()
	mgr, err := pvfs.StartMetaServer(pvfs.MetaConfig{Addr: "127.0.0.1:0", NumServers: g, StripeSize: stripe})
	if err != nil {
		t.Fatal(err)
	}
	c := &cluster{mgr: mgr, g: g}
	var prim, mirr []string
	for i := 0; i < 2*g; i++ {
		store := chio.NewMemFS()
		cfg := pvfs.DataServerConfig{ID: i, Addr: "127.0.0.1:0", Store: store}
		if heartbeats {
			cfg.MgrAddr = mgr.Addr()
			cfg.HeartbeatPeriod = 25 * time.Millisecond
		}
		ds, err := pvfs.StartDataServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		c.servers = append(c.servers, ds)
		c.stores = append(c.stores, store)
		if i < g {
			prim = append(prim, ds.Addr())
		} else {
			mirr = append(mirr, ds.Addr())
		}
	}
	cl, err := Dial(mgr.Addr(), prim, mirr, opts)
	if err != nil {
		t.Fatal(err)
	}
	c.client = cl
	t.Cleanup(func() {
		cl.Close()
		for _, ds := range c.servers {
			ds.Close()
		}
		mgr.Close()
	})
	return c
}

// injectLoad pushes synthetic load reports for every server.
func (c *cluster) injectLoad(t *testing.T, loads map[int]float64) {
	t.Helper()
	m, err := pvfs.DialMeta(c.mgr.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	for id, v := range loads {
		if err := m.ReportLoad(context.Background(), id, v); err != nil {
			t.Fatal(err)
		}
	}
}

// corruptPieces flips bytes in every piece stored on server idx.
func (c *cluster) corruptPieces(t *testing.T, idx int) {
	t.Helper()
	fis, err := c.stores[idx].List("")
	if err != nil {
		t.Fatal(err)
	}
	if len(fis) == 0 {
		t.Fatalf("server %d holds no pieces to corrupt", idx)
	}
	for _, fi := range fis {
		data, err := chio.ReadFull(c.stores[idx], fi.Name)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] ^= 0xFF
		}
		if err := chio.WriteFull(c.stores[idx], fi.Name, data); err != nil {
			t.Fatal(err)
		}
	}
}

func payload(n int) []byte {
	rng := util.NewRNG(77)
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(rng.Intn(256))
	}
	return p
}

func TestRoundTrip(t *testing.T) {
	c := start(t, 4, 1024, DefaultOptions(), false)
	data := payload(100_000)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip corrupted data")
	}
}

func TestMirrorHoldsIdenticalPieces(t *testing.T) {
	c := start(t, 3, 512, DefaultOptions(), false)
	if err := chio.WriteFull(c.client, "f", payload(50_000)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < c.g; i++ {
		pf, err := c.stores[i].List("")
		if err != nil || len(pf) != 1 {
			t.Fatalf("primary %d pieces: %v %v", i, pf, err)
		}
		mf, err := c.stores[c.g+i].List("")
		if err != nil || len(mf) != 1 {
			t.Fatalf("mirror %d pieces: %v %v", i, mf, err)
		}
		pd, _ := chio.ReadFull(c.stores[i], pf[0].Name)
		md, _ := chio.ReadFull(c.stores[c.g+i], mf[0].Name)
		if !bytes.Equal(pd, md) {
			t.Errorf("mirror pair %d differs: %d vs %d bytes", i, len(pd), len(md))
		}
	}
}

func TestDoubledReadsUseBothGroups(t *testing.T) {
	opts := DefaultOptions()
	opts.SkipHotSpots = false
	c := start(t, 2, 256, opts, false)
	data := payload(8192)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// Corrupt the mirror group: a doubled read must show corruption
	// in its second half (proof the mirror served it), while the
	// first half stays clean.
	c.corruptPieces(t, 2)
	c.corruptPieces(t, 3)
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	half := len(data) / 2
	if !bytes.Equal(got[:half], data[:half]) {
		t.Error("first half should come from the clean primary group")
	}
	if bytes.Equal(got[half:], data[half:]) {
		t.Error("second half identical to original: mirror group was not used")
	}
}

func TestSingleGroupReadWhenDoublingOff(t *testing.T) {
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.SkipHotSpots = false
	c := start(t, 2, 256, opts, false)
	data := payload(8192)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// With doubling off, only the primary group serves reads: mirror
	// corruption must be invisible.
	c.corruptPieces(t, 2)
	c.corruptPieces(t, 3)
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read touched the corrupted mirror group despite doubling off")
	}
}

func TestHotSpotSkipReadsFromMirror(t *testing.T) {
	opts := DefaultOptions()
	opts.DoubledReads = false // deterministic single-group preference
	opts.LoadCacheTTL = 0     // refresh every read
	c := start(t, 2, 256, opts, false)
	data := payload(4096)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// Corrupt primary server 0 and mark it hot: reads must be served
	// by its mirror partner and return clean data.
	c.corruptPieces(t, 0)
	c.injectLoad(t, map[int]float64{0: 50, 1: 0.2, 2: 0.2, 3: 0.2})
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("hot primary server was not skipped")
	}
}

// TestAuditRecordsHotSpotActivity: the client's audit must name the
// hot server, count the stripe reads rerouted to its mirror, and log
// the transition through the structured logger.
func TestAuditRecordsHotSpotActivity(t *testing.T) {
	var logBuf bytes.Buffer
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.LoadCacheTTL = 0
	opts.Logger = slog.New(slog.NewTextHandler(&logBuf, nil))
	c := start(t, 2, 256, opts, false)
	data := payload(4096)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}

	if a := c.client.Audit(); len(a.Events) != 0 || len(a.Reroutes) != 0 {
		t.Fatalf("audit not empty before any hot activity: %+v", a)
	}

	c.injectLoad(t, map[int]float64{0: 50, 1: 0.2, 2: 0.2, 3: 0.2})
	if _, err := chio.ReadFull(c.client, "f"); err != nil {
		t.Fatal(err)
	}

	a := c.client.Audit()
	if a.GroupSize != 2 {
		t.Errorf("group size: %d", a.GroupSize)
	}
	var marked bool
	for _, ev := range a.Events {
		if ev.ServerID == 0 && ev.Hot {
			marked = true
			if ev.Load != 50 || ev.Cutoff <= 0 {
				t.Errorf("event detail: %+v", ev)
			}
		}
	}
	if !marked {
		t.Fatalf("no hot event for server 0: %+v", a.Events)
	}
	if a.Reroutes[0] == 0 {
		t.Errorf("no reroutes recorded away from server 0: %+v", a.Reroutes)
	}
	if !strings.Contains(logBuf.String(), "hot-spot marked") {
		t.Errorf("structured log missing transition:\n%s", logBuf.String())
	}

	// Cooling down must append a cleared event.
	c.injectLoad(t, map[int]float64{0: 0.1, 1: 0.2, 2: 0.2, 3: 0.2})
	if _, err := chio.ReadFull(c.client, "f"); err != nil {
		t.Fatal(err)
	}
	a = c.client.Audit()
	var cleared bool
	for _, ev := range a.Events {
		if ev.ServerID == 0 && !ev.Hot {
			cleared = true
		}
	}
	if !cleared {
		t.Errorf("no cooled-down event: %+v", a.Events)
	}
	if !strings.Contains(logBuf.String(), "hot-spot cleared") {
		t.Errorf("structured log missing clear:\n%s", logBuf.String())
	}
}

func TestNoSkipWhenDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.SkipHotSpots = false
	c := start(t, 2, 256, opts, false)
	data := payload(4096)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	c.corruptPieces(t, 0)
	c.injectLoad(t, map[int]float64{0: 50, 1: 0.2, 2: 0.2, 3: 0.2})
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, data) {
		t.Error("data clean although skipping is disabled and primary 0 is corrupt")
	}
}

func TestIdleSystemNeverSkips(t *testing.T) {
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.LoadCacheTTL = 0
	c := start(t, 2, 256, opts, false)
	data := payload(4096)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// All loads small: even a 12x relative difference stays below the
	// MinHotLoad floor, so the (corrupt) mirror is never consulted.
	c.corruptPieces(t, 2)
	c.corruptPieces(t, 3)
	c.injectLoad(t, map[int]float64{0: 0.6, 1: 0.05, 2: 0.05, 3: 0.05})
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("idle system skipped to the mirror")
	}
}

func TestHotPairNeverBothSkipped(t *testing.T) {
	opts := DefaultOptions()
	opts.LoadCacheTTL = 0
	c := start(t, 2, 256, opts, false)
	data := payload(4096)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// Both sides of pair 0 hot: the client must still read pair 0
	// from somewhere (the hotter side is skipped, the other used).
	c.injectLoad(t, map[int]float64{0: 50, 1: 0.2, 2: 60, 3: 0.2})
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("read failed with both pair members hot")
	}
}

func TestAsyncMirrorWrites(t *testing.T) {
	opts := DefaultOptions()
	opts.WriteProtocol = ClientAsync
	c := start(t, 2, 512, opts, false)
	data := payload(20_000)
	f, err := c.client.Create("f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // flushes mirror writes
		t.Fatal(err)
	}
	// After close, the mirror must be complete: read second half via
	// doubled reads and compare.
	got, err := chio.ReadFull(c.client, "f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("async mirror write lost data")
	}
	if err := c.client.AsyncErr(); err != nil {
		t.Errorf("async error: %v", err)
	}
}

func TestStatRemoveList(t *testing.T) {
	c := start(t, 2, 256, DefaultOptions(), false)
	if err := chio.WriteFull(c.client, "a/1", payload(100)); err != nil {
		t.Fatal(err)
	}
	if err := chio.WriteFull(c.client, "a/2", payload(200)); err != nil {
		t.Fatal(err)
	}
	fi, err := c.client.Stat("a/2")
	if err != nil || fi.Size != 200 {
		t.Fatalf("stat: %+v %v", fi, err)
	}
	fis, err := c.client.List("a/")
	if err != nil || len(fis) != 2 {
		t.Fatalf("list: %+v %v", fis, err)
	}
	if err := c.client.Remove("a/1"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.client.Open("a/1"); !errors.Is(err, chio.ErrNotExist) {
		t.Error("file opens after remove")
	}
	// Both files fit in stripe 0, so only pair 0 (servers 0 and 2)
	// holds pieces; after removing a/1 each must hold exactly a/2's.
	for _, i := range []int{0, 2} {
		fis, _ := c.stores[i].List("")
		if len(fis) != 1 {
			t.Errorf("server %d piece count = %d, want 1", i, len(fis))
		}
	}
}

func TestSeekEndAndEOF(t *testing.T) {
	c := start(t, 2, 64, DefaultOptions(), false)
	if err := chio.WriteFull(c.client, "f", []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	f, err := c.client.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if pos, err := f.Seek(-4, io.SeekEnd); err != nil || pos != 6 {
		t.Fatalf("seek: %d %v", pos, err)
	}
	buf := make([]byte, 10)
	n, err := f.Read(buf)
	if n != 4 || (err != nil && err != io.EOF) {
		t.Fatalf("tail read: %d %v", n, err)
	}
	if string(buf[:n]) != "6789" {
		t.Errorf("tail = %q", buf[:n])
	}
	if _, err := f.ReadAt(buf, 100); err != io.EOF {
		t.Errorf("past-end err = %v", err)
	}
}

func TestGroupSizeValidation(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", nil, nil, DefaultOptions()); err == nil {
		t.Error("empty groups accepted")
	}
	if _, err := Dial("127.0.0.1:1", []string{"a"}, []string{"a", "b"}, DefaultOptions()); err == nil {
		t.Error("mismatched groups accepted")
	}
}

func TestHeartbeatDrivenSkip(t *testing.T) {
	// End-to-end: real heartbeats, one throttled (slow) server that
	// accumulates queue depth under concurrent load, then gets
	// skipped.
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.LoadCacheTTL = 10 * time.Millisecond
	opts.MinHotLoad = 0.5
	opts.HotFactor = 2
	c := start(t, 2, 1024, opts, true)
	data := payload(512 * 1024)
	if err := chio.WriteFull(c.client, "f", data); err != nil {
		t.Fatal(err)
	}
	// Stress primary server 0: large throttle plus a hammering client.
	c.servers[0].SetThrottle(2 * time.Millisecond)
	stop := make(chan struct{})
	go func() {
		d, err := pvfs.DialData(c.servers[0].Addr())
		if err != nil {
			return
		}
		defer d.Close()
		junk := make([]byte, 64*1024)
		for {
			select {
			case <-stop:
				return
			default:
				d.WritePiece(context.Background(), 0xdead, 0, junk)
			}
		}
	}()
	defer close(stop)

	// Wait for the hot set to reflect the stress, then time a read.
	time.Sleep(300 * time.Millisecond)
	f, err := c.client.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, len(data))
	start := time.Now()
	if _, err := f.ReadAt(buf, 0); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if !bytes.Equal(buf, data) {
		t.Fatal("data corrupted under stress")
	}
	// 256 KiB would land on the throttled server without skipping:
	// 2ms/KiB * 256 = 512ms minimum. With skipping the read should
	// finish far faster.
	if elapsed > 400*time.Millisecond {
		t.Errorf("read took %v; hot server apparently not skipped", elapsed)
	}
}
