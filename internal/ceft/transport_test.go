package ceft

import (
	"bytes"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"pario/internal/chio"
	"pario/internal/rpcpool"
)

// hungAddr returns the address of a listener that accepts connections
// and drains requests but never replies — a wedged data server.
func hungAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var conns []net.Conn
	var mu sync.Mutex
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go io.Copy(io.Discard, c)
		}
	}()
	t.Cleanup(func() {
		ln.Close()
		mu.Lock()
		for _, c := range conns {
			c.Close()
		}
		mu.Unlock()
	})
	return ln.Addr().String()
}

func TestHungPrimaryFallsBackToMirror(t *testing.T) {
	// A primary server hangs mid-read (accepts, never replies). The
	// per-request deadline converts that into a timeout and the read
	// completes from the mirror partner within the deadline budget.
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.SkipHotSpots = false
	c := start(t, 2, 1024, opts, false)
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	if err := chio.WriteFull(c.client, "f", payload); err != nil {
		t.Fatal(err)
	}

	// Same cluster, but primary 0's address points at a hung host.
	prim := []string{hungAddr(t), c.servers[1].Addr()}
	mirr := []string{c.servers[2].Addr(), c.servers[3].Addr()}
	cl, err := Dial(c.mgr.Addr(), prim, mirr, opts,
		rpcpool.WithTimeout(150*time.Millisecond), rpcpool.WithRetries(0))
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	f, err := cl.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got := make([]byte, len(payload))
	startT := time.Now()
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read with hung primary: %v", err)
	}
	if elapsed := time.Since(startT); elapsed > 3*time.Second {
		t.Errorf("fallback read took %v, want bounded by deadline budget", elapsed)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fallback read returned corrupt data")
	}
	if cl.Failovers() == 0 {
		t.Error("no failovers recorded; read did not use the mirror path")
	}
}

func TestKilledPrimaryMidSessionFallsBackToMirror(t *testing.T) {
	// The file is opened while all servers are healthy; a primary is
	// then killed and subsequent reads complete from its mirror.
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.SkipHotSpots = false
	c := start(t, 2, 1024, opts, false)
	payload := make([]byte, 16*1024)
	for i := range payload {
		payload[i] = byte(i * 11)
	}
	if err := chio.WriteFull(c.client, "f", payload); err != nil {
		t.Fatal(err)
	}
	f, err := c.client.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c.servers[0].Close() // kill primary 0 mid-session

	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("read after primary death: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read returned corrupt data")
	}
	if c.client.Failovers() == 0 {
		t.Error("no failovers recorded after primary death")
	}
}

func TestDialDegradedClusterSucceeds(t *testing.T) {
	// A fresh client must be able to dial a cluster that has already
	// lost one server of a mirror pair (degraded mode) — and fail
	// with chio.ErrServerDown when a whole pair is gone.
	opts := DefaultOptions()
	opts.SkipHotSpots = false
	c := start(t, 2, 1024, opts, false)
	payload := make([]byte, 8*1024)
	for i := range payload {
		payload[i] = byte(i * 5)
	}
	if err := chio.WriteFull(c.client, "f", payload); err != nil {
		t.Fatal(err)
	}
	c.servers[0].Close() // primary 0 dead before the new client dials

	prim := []string{c.servers[0].Addr(), c.servers[1].Addr()}
	mirr := []string{c.servers[2].Addr(), c.servers[3].Addr()}
	cl, err := Dial(c.mgr.Addr(), prim, mirr, opts, rpcpool.WithRetries(0))
	if err != nil {
		t.Fatalf("dial degraded cluster: %v", err)
	}
	defer cl.Close()
	got := make([]byte, len(payload))
	f, err := cl.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("degraded read: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded read returned corrupt data")
	}

	c.servers[2].Close() // now pair 0 is entirely gone
	_, err = Dial(c.mgr.Addr(), prim, mirr, opts, rpcpool.WithRetries(0))
	if !errors.Is(err, chio.ErrServerDown) {
		t.Fatalf("dial with whole pair down = %v, want chio.ErrServerDown", err)
	}
}

func TestDegradedClusterWritesSucceed(t *testing.T) {
	// With one member of a mirror pair dead, writes must still land on
	// the surviving member instead of failing the whole operation —
	// and must fail once a pair has no live member at all.
	for _, proto := range []WriteProtocol{ClientSync, ClientAsync} {
		t.Run(proto.String(), func(t *testing.T) {
			opts := DefaultOptions()
			opts.SkipHotSpots = false
			opts.WriteProtocol = proto
			c := start(t, 2, 1024, opts, false)
			c.servers[0].Close() // primary 0 dead before any write

			payload := make([]byte, 8*1024)
			for i := range payload {
				payload[i] = byte(i * 3)
			}
			if err := chio.WriteFull(c.client, "f", payload); err != nil {
				t.Fatalf("degraded write: %v", err)
			}
			if proto == ClientAsync {
				c.client.asyncWG.Wait()
				if err := c.client.AsyncErr(); err != nil {
					t.Fatalf("async mirror duplicate: %v", err)
				}
			}
			if c.client.DegradedWrites() == 0 {
				t.Error("no degraded writes recorded; data may have skipped the dead pair member silently")
			}

			got := make([]byte, len(payload))
			f, err := c.client.Open("f")
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			if _, err := f.ReadAt(got, 0); err != nil {
				t.Fatalf("read back degraded write: %v", err)
			}
			if !bytes.Equal(got, payload) {
				t.Fatal("degraded write read back corrupt data")
			}

			c.servers[2].Close() // now pair 0 has no live member
			err = chio.WriteFull(c.client, "g", payload)
			if !errors.Is(err, chio.ErrServerDown) {
				t.Fatalf("write with whole pair down = %v, want chio.ErrServerDown", err)
			}
		})
	}
}

func TestCEFTFileCloseInvalidatesHandle(t *testing.T) {
	c := start(t, 2, 1024, DefaultOptions(), false)
	if err := chio.WriteFull(c.client, "f", make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	f, err := c.client.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("first close: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Errorf("second close: %v, want nil", err)
	}
	if _, err := f.ReadAt(make([]byte, 10), 0); err == nil {
		t.Error("ReadAt after Close succeeded")
	}
	if _, err := f.WriteAt([]byte("x"), 0); err == nil {
		t.Error("WriteAt after Close succeeded")
	}
}

func TestConcurrentCEFTReadersShareOneClient(t *testing.T) {
	// Doubled-parallelism reads from many goroutines over one client:
	// exercises both transports' pools under -race.
	opts := DefaultOptions()
	opts.SkipHotSpots = false
	c := start(t, 2, 512, opts, false)
	payload := make([]byte, 32*1024)
	for i := range payload {
		payload[i] = byte(i * 17)
	}
	if err := chio.WriteFull(c.client, "f", payload); err != nil {
		t.Fatal(err)
	}
	const readers = 12
	var wg sync.WaitGroup
	errs := make([]error, readers)
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			f, err := c.client.Open("f")
			if err != nil {
				errs[r] = err
				return
			}
			defer f.Close()
			for i := 0; i < 6; i++ {
				off := int64((r*1543 + i*2741) % (len(payload) - 500))
				buf := make([]byte, 500)
				if _, err := f.ReadAt(buf, off); err != nil {
					errs[r] = err
					return
				}
				if !bytes.Equal(buf, payload[off:off+500]) {
					errs[r] = io.ErrUnexpectedEOF
					return
				}
			}
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Errorf("reader %d: %v", r, err)
		}
	}
}

func TestVectoredReadDegradesPerRun(t *testing.T) {
	// A dead mirror-pair member must degrade a multi-run vectored read
	// per run on the partner — not fail the whole request. The stripe
	// is small relative to the read, so each server's share of the read
	// is several runs coalesced into one vectored RPC.
	opts := DefaultOptions()
	opts.DoubledReads = false
	opts.SkipHotSpots = false
	c := start(t, 2, 512, opts, false)
	payload := make([]byte, 16*1024) // 16 stripes -> 8 runs per server
	for i := range payload {
		payload[i] = byte(i * 13)
	}
	if err := chio.WriteFull(c.client, "f", payload); err != nil {
		t.Fatal(err)
	}
	f, err := c.client.Open("f")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	c.servers[0].Close() // kill primary 0: its vectored read must fail over

	got := make([]byte, len(payload))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatalf("vectored read after primary death: %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("degraded vectored read returned corrupt data")
	}
	// Per-run fallback: server 0 held 8 runs of this read, and each
	// must have been retried individually on the mirror.
	if fo := c.client.Failovers(); fo < 8 {
		t.Errorf("failovers = %d, want >= 8 (one per run of the dead server)", fo)
	}
}
