// Package ceft implements CEFT-PVFS, the Cost-Effective Fault-
// Tolerant Parallel Virtual File System of Zhu et al.: a RAID-10
// extension of PVFS. Files are striped across a primary group of data
// servers and every stripe is duplicated onto a mirror group. The two
// read optimizations the paper evaluates are implemented here:
//
//  1. Doubled read parallelism — a read fetches the first half of the
//     requested range from one group and the second half from the
//     other, so all 2G servers serve data for a single large read.
//  2. Hot-spot skipping — the metadata server aggregates the load
//     heartbeats of all data servers; the client skips servers whose
//     load is far above their group's and reads the affected stripes
//     from the mirror partner instead.
//
// The client implements chio.FileSystem, so the parallel BLAST code
// runs over CEFT-PVFS unchanged.
package ceft

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"pario/internal/chio"
	"pario/internal/pvfs"
)

// WriteProtocol selects how writes are duplicated onto the mirror
// group — the four protocols of the CEFT-PVFS write-performance study
// (Zhu et al., ClusterWorld 2003), trading reliability guarantees for
// write latency.
type WriteProtocol int

const (
	// ClientSync: the client writes both groups and waits for both
	// (strongest guarantee, doubles client network traffic).
	ClientSync WriteProtocol = iota
	// ClientAsync: the client writes the primary group synchronously
	// and duplicates to the mirror group in the background; Close
	// flushes.
	ClientAsync
	// ServerSync: the client writes only the primary group; each
	// primary server forwards to its mirror partner and acknowledges
	// after the mirror confirms (halves client traffic, server pays).
	ServerSync
	// ServerAsync: like ServerSync but the primary acknowledges
	// before forwarding; Close flushes the servers' forward queues
	// (fastest, weakest window).
	ServerAsync
)

// String names the protocol.
func (w WriteProtocol) String() string {
	switch w {
	case ClientSync:
		return "client-sync"
	case ClientAsync:
		return "client-async"
	case ServerSync:
		return "server-sync"
	case ServerAsync:
		return "server-async"
	}
	return fmt.Sprintf("WriteProtocol(%d)", int(w))
}

// Options tune the CEFT client.
type Options struct {
	// DoubledReads enables the split-range doubled-parallelism read
	// path (§4.4 of the paper). Default true.
	DoubledReads bool
	// SkipHotSpots enables hot-spot avoidance (§4.5). Default true.
	SkipHotSpots bool
	// HotFactor: a server is hot when its load exceeds HotFactor x
	// the median load of all servers (and MinHotLoad).
	HotFactor float64
	// MinHotLoad is an absolute load floor below which no server is
	// considered hot, so idle systems never skip.
	MinHotLoad float64
	// LoadCacheTTL bounds how often the client polls the metadata
	// server for load reports.
	LoadCacheTTL time.Duration
	// WriteProtocol selects the duplication protocol. The server-side
	// protocols require the primary data servers to be started with
	// their MirrorAddr configured.
	WriteProtocol WriteProtocol
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{
		DoubledReads:  true,
		SkipHotSpots:  true,
		HotFactor:     4.0,
		MinHotLoad:    0.75,
		LoadCacheTTL:  250 * time.Millisecond,
		WriteProtocol: ClientSync,
	}
}

// Client is a CEFT-PVFS client over one metadata server, G primary
// data servers and G mirror data servers. Data server IDs are
// 0..G-1 (primary) and G..2G-1 (mirror): the mirror partner of
// primary server i is server G+i.
type Client struct {
	opts    Options
	meta    *pvfs.MetaConn
	primary []*pvfs.DataConn
	mirror  []*pvfs.DataConn

	loadMu      sync.Mutex
	loadFetched time.Time
	hotPrimary  []bool
	hotMirror   []bool

	asyncWG  sync.WaitGroup
	asyncMu  sync.Mutex
	asyncErr error

	failMu    sync.Mutex
	failovers int64
}

// Failovers reports how many sub-reads were served by a mirror
// partner after the preferred server failed (degraded-mode reads).
func (cl *Client) Failovers() int64 {
	cl.failMu.Lock()
	defer cl.failMu.Unlock()
	return cl.failovers
}

func (cl *Client) addFailovers(n int64) {
	if n == 0 {
		return
	}
	cl.failMu.Lock()
	cl.failovers += n
	cl.failMu.Unlock()
}

// partners returns, for each chosen connection, its mirror-pair
// counterpart (the degraded-mode fallback).
func (cl *Client) partners(conns []*pvfs.DataConn) []*pvfs.DataConn {
	out := make([]*pvfs.DataConn, len(conns))
	for i, d := range conns {
		if d == cl.primary[i] {
			out[i] = cl.mirror[i]
		} else {
			out[i] = cl.primary[i]
		}
	}
	return out
}

// DialClient connects to the manager and both server groups.
// primaryAddrs and mirrorAddrs must have equal length.
func DialClient(mgrAddr string, primaryAddrs, mirrorAddrs []string, opts Options) (*Client, error) {
	if len(primaryAddrs) == 0 || len(primaryAddrs) != len(mirrorAddrs) {
		return nil, fmt.Errorf("ceft: need equal non-empty primary and mirror groups (got %d and %d)",
			len(primaryAddrs), len(mirrorAddrs))
	}
	meta, err := pvfs.DialMeta(mgrAddr)
	if err != nil {
		return nil, err
	}
	cl := &Client{opts: opts, meta: meta}
	for _, a := range primaryAddrs {
		d, err := pvfs.DialData(a)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.primary = append(cl.primary, d)
	}
	for _, a := range mirrorAddrs {
		d, err := pvfs.DialData(a)
		if err != nil {
			cl.Close()
			return nil, err
		}
		cl.mirror = append(cl.mirror, d)
	}
	cl.hotPrimary = make([]bool, len(cl.primary))
	cl.hotMirror = make([]bool, len(cl.mirror))
	return cl, nil
}

// BackendName returns "ceft-pvfs".
func (cl *Client) BackendName() string { return "ceft-pvfs" }

// GroupSize returns the number of servers per group.
func (cl *Client) GroupSize() int { return len(cl.primary) }

// Close flushes asynchronous mirror writes and drops all connections.
func (cl *Client) Close() error {
	cl.asyncWG.Wait()
	var first error
	if cl.meta != nil {
		first = cl.meta.Close()
	}
	for _, d := range cl.primary {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, d := range cl.mirror {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// refreshHotSet polls the manager's load map (rate-limited by the
// TTL) and recomputes which servers are hot. A server is hot when its
// load exceeds HotFactor x the median of all reported loads and the
// MinHotLoad floor, and its mirror partner is not itself hot (the
// paper's constraint: skipping works as long as no mirroring pair is
// entirely hot).
func (cl *Client) refreshHotSet() {
	cl.loadMu.Lock()
	defer cl.loadMu.Unlock()
	if time.Since(cl.loadFetched) < cl.opts.LoadCacheTTL {
		return
	}
	cl.loadFetched = time.Now()
	loads, err := cl.meta.LoadQuery()
	if err != nil {
		return // keep the previous hot set
	}
	g := len(cl.primary)
	all := make([]float64, 0, len(loads))
	for _, v := range loads {
		all = append(all, v)
	}
	if len(all) == 0 {
		return
	}
	sort.Float64s(all)
	median := all[len(all)/2]
	cutoff := cl.opts.HotFactor * median
	if cutoff < cl.opts.MinHotLoad {
		cutoff = cl.opts.MinHotLoad
	}
	isHot := func(id int) bool {
		v, ok := loads[id]
		return ok && v > cutoff
	}
	for i := 0; i < g; i++ {
		hp, hm := isHot(i), isHot(g+i)
		// Never mark both sides of a pair: prefer skipping the hotter.
		if hp && hm {
			if loads[i] >= loads[g+i] {
				hm = false
			} else {
				hp = false
			}
		}
		cl.hotPrimary[i] = hp
		cl.hotMirror[i] = hm
	}
}

// pickConns returns, for each server index, the connection to use
// when the preferred group is primary (or mirror), honoring hot-spot
// skipping. skipped reports how many servers were redirected.
func (cl *Client) pickConns(preferPrimary bool) (conns []*pvfs.DataConn, skipped int) {
	g := len(cl.primary)
	conns = make([]*pvfs.DataConn, g)
	if cl.opts.SkipHotSpots {
		cl.refreshHotSet()
	}
	cl.loadMu.Lock()
	defer cl.loadMu.Unlock()
	for i := 0; i < g; i++ {
		usePrimary := preferPrimary
		if cl.opts.SkipHotSpots {
			if usePrimary && cl.hotPrimary[i] {
				usePrimary = false
				skipped++
			} else if !usePrimary && cl.hotMirror[i] {
				usePrimary = true
				skipped++
			}
		}
		if usePrimary {
			conns[i] = cl.primary[i]
		} else {
			conns[i] = cl.mirror[i]
		}
	}
	return conns, skipped
}

// Create implements chio.FileSystem.
func (cl *Client) Create(name string) (chio.File, error) {
	m, err := cl.meta.Create(name)
	if err != nil {
		return nil, err
	}
	// Clear stale pieces on both groups.
	g := len(cl.primary)
	errs := make([]error, 2*g)
	var wg sync.WaitGroup
	clear := func(idx int, d *pvfs.DataConn) {
		defer wg.Done()
		errs[idx] = d.RemovePiece(m.Handle)
	}
	for i, d := range cl.primary {
		wg.Add(1)
		go clear(i, d)
	}
	for i, d := range cl.mirror {
		wg.Add(1)
		go clear(g+i, d)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return &file{cl: cl, meta: m}, nil
}

// Open implements chio.FileSystem.
func (cl *Client) Open(name string) (chio.File, error) {
	m, err := cl.meta.Lookup(name)
	if err != nil {
		return nil, err
	}
	return &file{cl: cl, meta: m}, nil
}

// Stat implements chio.FileSystem.
func (cl *Client) Stat(name string) (chio.FileInfo, error) {
	m, err := cl.meta.Stat(name)
	if err != nil {
		return chio.FileInfo{}, err
	}
	return chio.FileInfo{Name: name, Size: m.Size}, nil
}

// Remove implements chio.FileSystem.
func (cl *Client) Remove(name string) error {
	m, err := cl.meta.Remove(name)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	rm := func(d *pvfs.DataConn) {
		defer wg.Done()
		d.RemovePiece(m.Handle)
	}
	for _, d := range cl.primary {
		wg.Add(1)
		go rm(d)
	}
	for _, d := range cl.mirror {
		wg.Add(1)
		go rm(d)
	}
	wg.Wait()
	return nil
}

// List implements chio.FileSystem.
func (cl *Client) List(prefix string) ([]chio.FileInfo, error) {
	metas, err := cl.meta.List(prefix)
	if err != nil {
		return nil, err
	}
	out := make([]chio.FileInfo, 0, len(metas))
	for _, m := range metas {
		out = append(out, chio.FileInfo{Name: m.Name, Size: m.Size})
	}
	return out, nil
}

func (cl *Client) recordAsyncErr(err error) {
	if err == nil {
		return
	}
	cl.asyncMu.Lock()
	if cl.asyncErr == nil {
		cl.asyncErr = err
	}
	cl.asyncMu.Unlock()
}

// AsyncErr returns the first error from background mirror writes, if
// any (only relevant with the ClientAsync protocol).
func (cl *Client) AsyncErr() error {
	cl.asyncMu.Lock()
	defer cl.asyncMu.Unlock()
	return cl.asyncErr
}

// file is an open CEFT file handle.
type file struct {
	cl   *Client
	meta pvfs.Meta
	mu   sync.Mutex
	off  int64
}

func (f *file) Name() string { return f.meta.Name }

func (f *file) refreshSize() error {
	m, err := f.cl.meta.Stat(f.meta.Name)
	if err != nil {
		return err
	}
	f.meta.Size = m.Size
	return nil
}

// pieceWriter issues one stripe-run write to a data server.
type pieceWriter func(d *pvfs.DataConn, handle uint64, off int64, data []byte) error

func plainWrite(d *pvfs.DataConn, handle uint64, off int64, data []byte) error {
	return d.WritePiece(handle, off, data)
}

func dupSyncWrite(d *pvfs.DataConn, handle uint64, off int64, data []byte) error {
	return d.WritePieceDup(handle, off, data, true)
}

func dupAsyncWrite(d *pvfs.DataConn, handle uint64, off int64, data []byte) error {
	return d.WritePieceDup(handle, off, data, false)
}

// writeRuns issues the per-server runs of one group using write.
func writeRuns(conns []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, write pieceWriter) error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for server, list := range runs {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(server int, list []pvfs.StripeRun) {
			defer wg.Done()
			d := conns[server]
			for _, r := range list {
				if err := write(d, handle, r.ServerOff, p[r.BufOff:r.BufOff+r.Length]); err != nil {
					errs[server] = err
					return
				}
			}
		}(server, list)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteAt duplicates the write onto both groups (RAID-10) using the
// configured duplication protocol.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ceft: negative write offset")
	}
	n := int64(len(p))
	if n == 0 {
		return 0, nil
	}
	runs := pvfs.Decompose(off, n, f.meta.StripeSize, len(f.cl.primary))
	switch f.cl.opts.WriteProtocol {
	case ClientSync:
		var wg sync.WaitGroup
		var perr, merr error
		wg.Add(2)
		go func() { defer wg.Done(); perr = writeRuns(f.cl.primary, runs, f.meta.Handle, p, plainWrite) }()
		go func() { defer wg.Done(); merr = writeRuns(f.cl.mirror, runs, f.meta.Handle, p, plainWrite) }()
		wg.Wait()
		if perr != nil {
			return 0, perr
		}
		if merr != nil {
			return 0, merr
		}
	case ClientAsync:
		if err := writeRuns(f.cl.primary, runs, f.meta.Handle, p, plainWrite); err != nil {
			return 0, err
		}
		dup := append([]byte(nil), p...)
		f.cl.asyncWG.Add(1)
		go func() {
			defer f.cl.asyncWG.Done()
			f.cl.recordAsyncErr(writeRuns(f.cl.mirror, runs, f.meta.Handle, dup, plainWrite))
		}()
	case ServerSync:
		if err := writeRuns(f.cl.primary, runs, f.meta.Handle, p, dupSyncWrite); err != nil {
			return 0, err
		}
	case ServerAsync:
		if err := writeRuns(f.cl.primary, runs, f.meta.Handle, p, dupAsyncWrite); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("ceft: unknown write protocol %v", f.cl.opts.WriteProtocol)
	}
	if err := f.cl.meta.GrowSize(f.meta.Name, off+n); err != nil {
		return 0, err
	}
	if off+n > f.meta.Size {
		f.meta.Size = off + n
	}
	return int(n), nil
}

// readRuns issues per-server read runs against the chosen conns.
// fallback, when non-nil, provides each server's mirror partner: a
// failed sub-read is retried there, which is CEFT's RAID-10 degraded
// mode (a dead server's data remains available on its mirror).
func readRuns(conns, fallback []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, failovers *int64) error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	var failedOver int64
	var mu sync.Mutex
	for server, list := range runs {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(server int, list []pvfs.StripeRun) {
			defer wg.Done()
			d := conns[server]
			for _, r := range list {
				data, err := d.ReadPiece(handle, r.ServerOff, r.Length)
				if err != nil && fallback != nil && fallback[server] != nil && fallback[server] != d {
					mu.Lock()
					failedOver++
					mu.Unlock()
					data, err = fallback[server].ReadPiece(handle, r.ServerOff, r.Length)
				}
				if err != nil {
					errs[server] = err
					return
				}
				copy(p[r.BufOff:r.BufOff+r.Length], data)
			}
		}(server, list)
	}
	wg.Wait()
	if failovers != nil {
		*failovers += failedOver
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadAt serves the read with doubled parallelism and hot-spot
// skipping per the client options.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ceft: negative read offset")
	}
	want := int64(len(p))
	if off+want > f.meta.Size {
		if err := f.refreshSize(); err != nil {
			return 0, err
		}
	}
	if off >= f.meta.Size {
		return 0, io.EOF
	}
	n := want
	var outErr error
	if off+n > f.meta.Size {
		n = f.meta.Size - off
		outErr = io.EOF
	}
	for i := int64(0); i < n; i++ {
		p[i] = 0
	}
	g := len(f.cl.primary)
	if !f.cl.opts.DoubledReads {
		conns, _ := f.cl.pickConns(true)
		runs := pvfs.Decompose(off, n, f.meta.StripeSize, g)
		var fo int64
		if err := readRuns(conns, f.cl.partners(conns), runs, f.meta.Handle, p[:n], &fo); err != nil {
			return 0, err
		}
		f.cl.addFailovers(fo)
		return int(n), outErr
	}
	// Doubled parallelism: first half from the primary group, second
	// half from the mirror group, concurrently (2G servers active).
	half := n / 2
	primConns, _ := f.cl.pickConns(true)
	mirrConns, _ := f.cl.pickConns(false)
	var wg sync.WaitGroup
	var err1, err2 error
	if half > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs := pvfs.Decompose(off, half, f.meta.StripeSize, g)
			var fo int64
			err1 = readRuns(primConns, f.cl.partners(primConns), runs, f.meta.Handle, p[:half], &fo)
			f.cl.addFailovers(fo)
		}()
	}
	if n-half > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs := pvfs.Decompose(off+half, n-half, f.meta.StripeSize, g)
			var fo int64
			err2 = readRuns(mirrConns, f.cl.partners(mirrConns), runs, f.meta.Handle, p[half:n], &fo)
			f.cl.addFailovers(fo)
		}()
	}
	wg.Wait()
	if err1 != nil {
		return 0, err1
	}
	if err2 != nil {
		return 0, err2
	}
	return int(n), outErr
}

func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.off + offset
	case io.SeekEnd:
		if err := f.refreshSize(); err != nil {
			return 0, err
		}
		next = f.meta.Size + offset
	default:
		return 0, fmt.Errorf("ceft: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("ceft: negative seek position")
	}
	f.off = next
	return next, nil
}

// Close settles the configured duplication protocol: client-async
// waits for the client's background mirror writes; server-async asks
// every primary server to flush its forward queue.
func (f *file) Close() error {
	switch f.cl.opts.WriteProtocol {
	case ClientAsync:
		f.cl.asyncWG.Wait()
		return f.cl.AsyncErr()
	case ServerAsync:
		var first error
		for _, d := range f.cl.primary {
			if err := d.FlushForwards(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return nil
}
