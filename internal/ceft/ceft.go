// Package ceft implements CEFT-PVFS, the Cost-Effective Fault-
// Tolerant Parallel Virtual File System of Zhu et al.: a RAID-10
// extension of PVFS. Files are striped across a primary group of data
// servers and every stripe is duplicated onto a mirror group. The two
// read optimizations the paper evaluates are implemented here:
//
//  1. Doubled read parallelism — a read fetches the first half of the
//     requested range from one group and the second half from the
//     other, so all 2G servers serve data for a single large read.
//  2. Hot-spot skipping — the metadata server aggregates the load
//     heartbeats of all data servers; the client skips servers whose
//     load is far above their group's and reads the affected stripes
//     from the mirror partner instead.
//
// The client implements chio.FileSystem, so the parallel BLAST code
// runs over CEFT-PVFS unchanged. Transport behavior (connection
// pooling, per-request deadlines, retries) comes from the shared
// rpcpool options; a sub-read that times out or finds its server down
// falls back to the mirror partner, so one hung server degrades a
// read's latency by at most the configured deadline instead of
// hanging it.
package ceft

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"

	"pario/internal/chio"
	"pario/internal/pvfs"
	"pario/internal/rpcpool"
	"pario/internal/telemetry"
)

// WriteProtocol selects how writes are duplicated onto the mirror
// group — the four protocols of the CEFT-PVFS write-performance study
// (Zhu et al., ClusterWorld 2003), trading reliability guarantees for
// write latency.
type WriteProtocol int

const (
	// ClientSync: the client writes both groups and waits for both
	// (strongest guarantee, doubles client network traffic).
	ClientSync WriteProtocol = iota
	// ClientAsync: the client writes the primary group synchronously
	// and duplicates to the mirror group in the background; Close
	// flushes.
	ClientAsync
	// ServerSync: the client writes only the primary group; each
	// primary server forwards to its mirror partner and acknowledges
	// after the mirror confirms (halves client traffic, server pays).
	ServerSync
	// ServerAsync: like ServerSync but the primary acknowledges
	// before forwarding; Close flushes the servers' forward queues
	// (fastest, weakest window).
	ServerAsync
)

// String names the protocol.
func (w WriteProtocol) String() string {
	switch w {
	case ClientSync:
		return "client-sync"
	case ClientAsync:
		return "client-async"
	case ServerSync:
		return "server-sync"
	case ServerAsync:
		return "server-async"
	}
	return fmt.Sprintf("WriteProtocol(%d)", int(w))
}

// Options tune the CEFT client's replication semantics. Transport
// behavior (pooling, timeouts, retries) is configured separately with
// the rpcpool options passed to Dial.
type Options struct {
	// DoubledReads enables the split-range doubled-parallelism read
	// path (§4.4 of the paper). Default true.
	DoubledReads bool
	// SkipHotSpots enables hot-spot avoidance (§4.5). Default true.
	SkipHotSpots bool
	// HotFactor: a server is hot when its load exceeds HotFactor x
	// the median load of all servers (and MinHotLoad).
	HotFactor float64
	// MinHotLoad is an absolute load floor below which no server is
	// considered hot, so idle systems never skip.
	MinHotLoad float64
	// LoadCacheTTL bounds how often the client polls the metadata
	// server for load reports.
	LoadCacheTTL time.Duration
	// WriteProtocol selects the duplication protocol. The server-side
	// protocols require the primary data servers to be started with
	// their MirrorAddr configured.
	WriteProtocol WriteProtocol
	// Logger, when non-nil, receives structured hot-spot transition
	// events (server marked hot / cooled down) with trace correlation.
	Logger *slog.Logger
}

// DefaultOptions mirror the paper's configuration.
func DefaultOptions() Options {
	return Options{
		DoubledReads:  true,
		SkipHotSpots:  true,
		HotFactor:     4.0,
		MinHotLoad:    0.75,
		LoadCacheTTL:  250 * time.Millisecond,
		WriteProtocol: ClientSync,
	}
}

// Client is a CEFT-PVFS client over one metadata server, G primary
// data servers and G mirror data servers. Data server IDs are
// 0..G-1 (primary) and G..2G-1 (mirror): the mirror partner of
// primary server i is server G+i.
type Client struct {
	opts    Options
	tracer  *telemetry.Tracer
	ctx     context.Context
	meta    *pvfs.MetaConn
	primary []*pvfs.DataConn
	mirror  []*pvfs.DataConn

	loadMu      sync.Mutex
	loadFetched time.Time
	hotPrimary  []bool
	hotMirror   []bool
	hotEvents   []HotEvent
	reroutes    map[int]int64

	asyncWG  sync.WaitGroup
	asyncMu  sync.Mutex
	asyncErr error

	failMu    sync.Mutex
	failovers int64
	degraded  int64
}

// HotEvent is one structured hot-set transition: the moment the
// client's view of a data server crossed (or re-crossed) the hot
// cutoff. The event stream is the audit trail of the paper's Figures
// 8-9 mechanism — it answers "which server was considered hot, when,
// and against what cutoff".
type HotEvent struct {
	// Time is when the client observed the transition.
	Time time.Time
	// ServerID is the data server (0..G-1 primary, G..2G-1 mirror).
	ServerID int
	// Load is the heartbeat load that triggered the transition.
	Load float64
	// Cutoff is the hot threshold in force (HotFactor x median,
	// floored at MinHotLoad).
	Cutoff float64
	// Hot is true when the server entered the hot set, false when it
	// cooled down and rejoined normal scheduling.
	Hot bool
}

// Audit is a snapshot of the client's hot-spot and fault-handling
// history, consumed by run reports.
type Audit struct {
	// Events are the hot-set transitions in observation order.
	Events []HotEvent
	// Reroutes counts, per skipped server ID, the stripe reads that
	// were redirected to its mirror partner by hot-spot skipping (one
	// count per read per skipped server).
	Reroutes map[int]int64
	// Failovers and DegradedWrites mirror the counters of the same
	// names: fault-driven (not load-driven) mirror activity.
	Failovers      int64
	DegradedWrites int64
	// GroupSize is G, so consumers can name mirror partners.
	GroupSize int
}

// Audit returns a copy of the client's hot-spot audit state.
func (cl *Client) Audit() Audit {
	a := Audit{GroupSize: len(cl.primary)}
	cl.loadMu.Lock()
	a.Events = append([]HotEvent(nil), cl.hotEvents...)
	a.Reroutes = make(map[int]int64, len(cl.reroutes))
	for id, n := range cl.reroutes {
		a.Reroutes[id] = n
	}
	cl.loadMu.Unlock()
	cl.failMu.Lock()
	a.Failovers = cl.failovers
	a.DegradedWrites = cl.degraded
	cl.failMu.Unlock()
	return a
}

// maxHotEvents bounds the audit trail; a long run oscillating around
// the cutoff keeps the most recent transitions.
const maxHotEvents = 4096

// Failovers reports how many sub-reads were served by a mirror
// partner after the preferred server failed (degraded-mode reads).
func (cl *Client) Failovers() int64 {
	cl.failMu.Lock()
	defer cl.failMu.Unlock()
	return cl.failovers
}

func (cl *Client) addFailovers(n int64) {
	if n == 0 {
		return
	}
	cl.failMu.Lock()
	cl.failovers += n
	cl.failMu.Unlock()
}

// DegradedWrites reports how many per-server write runs landed on
// only one member of a mirror pair because the other was unreachable.
// Non-zero means redundancy is reduced until the pair is resynced.
func (cl *Client) DegradedWrites() int64 {
	cl.failMu.Lock()
	defer cl.failMu.Unlock()
	return cl.degraded
}

func (cl *Client) addDegraded(n int64) {
	if n == 0 {
		return
	}
	cl.failMu.Lock()
	cl.degraded += n
	cl.failMu.Unlock()
}

// partners returns, for each chosen connection, its mirror-pair
// counterpart (the degraded-mode fallback).
func (cl *Client) partners(conns []*pvfs.DataConn) []*pvfs.DataConn {
	out := make([]*pvfs.DataConn, len(conns))
	for i, d := range conns {
		if d == cl.primary[i] {
			out[i] = cl.mirror[i]
		} else {
			out[i] = cl.primary[i]
		}
	}
	return out
}

// Dial connects to the manager and both server groups. primaryAddrs
// and mirrorAddrs must have equal length. o carries the CEFT
// replication options; opts carries the transport options shared with
// the plain PVFS backend:
//
//	cl, err := ceft.Dial(mgr, primaries, mirrors, ceft.DefaultOptions(),
//		rpcpool.WithTimeout(2*time.Second),
//		rpcpool.WithPoolSize(8))
func Dial(mgrAddr string, primaryAddrs, mirrorAddrs []string, o Options, opts ...rpcpool.Option) (*Client, error) {
	if len(primaryAddrs) == 0 || len(primaryAddrs) != len(mirrorAddrs) {
		return nil, fmt.Errorf("ceft: need equal non-empty primary and mirror groups (got %d and %d)",
			len(primaryAddrs), len(mirrorAddrs))
	}
	meta, err := pvfs.DialMeta(mgrAddr, opts...)
	if err != nil {
		return nil, err
	}
	cl := &Client{
		opts: o,
		// The root-span tracer is the one the transports share via
		// rpcpool.WithTracer, so application reads and the RPC spans
		// they fan out into land in the same buffer.
		tracer: rpcpool.Apply(opts...).Tracer,
		ctx:    context.Background(),
		meta:   meta,
	}
	for _, a := range primaryAddrs {
		cl.primary = append(cl.primary, pvfs.DialDataLazy(a, opts...))
	}
	for _, a := range mirrorAddrs {
		cl.mirror = append(cl.mirror, pvfs.DialDataLazy(a, opts...))
	}
	// Probe every data server in parallel, but only require one live
	// member per mirror pair: a degraded cluster must stay dialable
	// (reads fail over to the surviving partner).
	g := len(primaryAddrs)
	alive := make([]bool, 2*g)
	var wg sync.WaitGroup
	probe := func(i int, d *pvfs.DataConn) {
		defer wg.Done()
		_, err := d.Ping(cl.ctx)
		alive[i] = err == nil
	}
	for i, d := range cl.primary {
		wg.Add(1)
		go probe(i, d)
	}
	for i, d := range cl.mirror {
		wg.Add(1)
		go probe(g+i, d)
	}
	wg.Wait()
	for i := 0; i < g; i++ {
		if !alive[i] && !alive[g+i] {
			cl.Close()
			return nil, fmt.Errorf("ceft: mirror pair %d unreachable (primary %s, mirror %s): %w",
				i, primaryAddrs[i], mirrorAddrs[i], chio.ErrServerDown)
		}
	}
	cl.hotPrimary = make([]bool, len(cl.primary))
	cl.hotMirror = make([]bool, len(cl.mirror))
	cl.reroutes = make(map[int]int64)
	return cl, nil
}

// BackendName returns "ceft-pvfs".
func (cl *Client) BackendName() string { return "ceft-pvfs" }

// GroupSize returns the number of servers per group.
func (cl *Client) GroupSize() int { return len(cl.primary) }

// WithContext implements chio.ContextBinder: the returned view shares
// this client's connections, hot-set cache, and failover counters, but
// its operations abort when ctx is done.
//
// The view aliases the receiver's synchronization state, so it must
// not be copied further except through WithContext.
func (cl *Client) WithContext(ctx context.Context) chio.FileSystem {
	if ctx == nil {
		ctx = context.Background()
	}
	return &boundClient{Client: cl, ctx: ctx}
}

// boundClient is a context-bound view of a Client. Embedding keeps the
// shared state (pools, hot sets, counters) in one place; only the
// context differs per view.
type boundClient struct {
	*Client
	ctx context.Context
}

func (b *boundClient) Create(name string) (chio.File, error) { return b.Client.create(b.ctx, name) }
func (b *boundClient) Open(name string) (chio.File, error)   { return b.Client.open(b.ctx, name) }
func (b *boundClient) Stat(name string) (chio.FileInfo, error) {
	return b.Client.stat(b.ctx, name)
}
func (b *boundClient) Remove(name string) error { return b.Client.remove(b.ctx, name) }
func (b *boundClient) List(prefix string) ([]chio.FileInfo, error) {
	return b.Client.list(b.ctx, prefix)
}
func (b *boundClient) WithContext(ctx context.Context) chio.FileSystem {
	return b.Client.WithContext(ctx)
}

// Close flushes asynchronous mirror writes and drops all connections.
func (cl *Client) Close() error {
	cl.asyncWG.Wait()
	var first error
	if cl.meta != nil {
		first = cl.meta.Close()
	}
	for _, d := range cl.primary {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	for _, d := range cl.mirror {
		if err := d.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// refreshHotSet polls the manager's load map (rate-limited by the
// TTL) and recomputes which servers are hot. A server is hot when its
// load exceeds HotFactor x the median of all reported loads and the
// MinHotLoad floor, and its mirror partner is not itself hot (the
// paper's constraint: skipping works as long as no mirroring pair is
// entirely hot).
func (cl *Client) refreshHotSet(ctx context.Context) {
	cl.loadMu.Lock()
	defer cl.loadMu.Unlock()
	if time.Since(cl.loadFetched) < cl.opts.LoadCacheTTL {
		return
	}
	cl.loadFetched = time.Now()
	loads, err := cl.meta.LoadQuery(ctx)
	if err != nil {
		return // keep the previous hot set
	}
	g := len(cl.primary)
	all := make([]float64, 0, len(loads))
	for _, v := range loads {
		all = append(all, v)
	}
	if len(all) == 0 {
		return
	}
	sort.Float64s(all)
	median := all[len(all)/2]
	cutoff := cl.opts.HotFactor * median
	if cutoff < cl.opts.MinHotLoad {
		cutoff = cl.opts.MinHotLoad
	}
	isHot := func(id int) bool {
		v, ok := loads[id]
		return ok && v > cutoff
	}
	for i := 0; i < g; i++ {
		hp, hm := isHot(i), isHot(g+i)
		// Never mark both sides of a pair: prefer skipping the hotter.
		if hp && hm {
			if loads[i] >= loads[g+i] {
				hm = false
			} else {
				hp = false
			}
		}
		if hp != cl.hotPrimary[i] {
			cl.recordHotEvent(ctx, i, loads[i], cutoff, hp)
		}
		if hm != cl.hotMirror[i] {
			cl.recordHotEvent(ctx, g+i, loads[g+i], cutoff, hm)
		}
		cl.hotPrimary[i] = hp
		cl.hotMirror[i] = hm
	}
}

// recordHotEvent appends one hot-set transition to the audit trail and
// logs it. Callers hold loadMu. ctx carries the span of the read that
// triggered the refresh, so the log line names the trace it belongs to.
func (cl *Client) recordHotEvent(ctx context.Context, id int, load, cutoff float64, hot bool) {
	cl.hotEvents = append(cl.hotEvents, HotEvent{
		Time: time.Now(), ServerID: id, Load: load, Cutoff: cutoff, Hot: hot,
	})
	if n := len(cl.hotEvents) - maxHotEvents; n > 0 {
		cl.hotEvents = append(cl.hotEvents[:0], cl.hotEvents[n:]...)
	}
	if cl.opts.Logger != nil {
		msg := "hot-spot marked"
		if !hot {
			msg = "hot-spot cleared"
		}
		cl.opts.Logger.Info(msg, append([]any{
			"server", id, "load", load, "cutoff", cutoff,
		}, telemetry.TraceAttrs(ctx)...)...)
	}
}

// pickConns returns, for each server index, the connection to use
// when the preferred group is primary (or mirror), honoring hot-spot
// skipping. skipped reports how many servers were redirected.
func (cl *Client) pickConns(ctx context.Context, preferPrimary bool) (conns []*pvfs.DataConn, skipped int) {
	g := len(cl.primary)
	conns = make([]*pvfs.DataConn, g)
	if cl.opts.SkipHotSpots {
		cl.refreshHotSet(ctx)
	}
	cl.loadMu.Lock()
	defer cl.loadMu.Unlock()
	for i := 0; i < g; i++ {
		usePrimary := preferPrimary
		if cl.opts.SkipHotSpots {
			if usePrimary && cl.hotPrimary[i] {
				usePrimary = false
				skipped++
				cl.reroutes[i]++
			} else if !usePrimary && cl.hotMirror[i] {
				usePrimary = true
				skipped++
				cl.reroutes[g+i]++
			}
		}
		if usePrimary {
			conns[i] = cl.primary[i]
		} else {
			conns[i] = cl.mirror[i]
		}
	}
	return conns, skipped
}

// Create implements chio.FileSystem.
func (cl *Client) Create(name string) (chio.File, error) { return cl.create(cl.ctx, name) }

func (cl *Client) create(ctx context.Context, name string) (chio.File, error) {
	m, err := cl.meta.Create(ctx, name)
	if err != nil {
		return nil, err
	}
	// Clear stale pieces on both groups.
	g := len(cl.primary)
	errs := make([]error, 2*g)
	var wg sync.WaitGroup
	clear := func(idx int, d *pvfs.DataConn) {
		defer wg.Done()
		errs[idx] = d.RemovePiece(ctx, m.Handle)
	}
	for i, d := range cl.primary {
		wg.Add(1)
		go clear(i, d)
	}
	for i, d := range cl.mirror {
		wg.Add(1)
		go clear(g+i, d)
	}
	wg.Wait()
	// Tolerate a clear failure when the pair partner was cleared: on a
	// degraded cluster the dead member holds no piece to go stale (it
	// must be resynced before rejoining anyway).
	var deg int64
	for i := 0; i < g; i++ {
		if errs[i] != nil && errs[g+i] != nil {
			return nil, errs[i]
		}
		if errs[i] != nil || errs[g+i] != nil {
			deg++
		}
	}
	cl.addDegraded(deg)
	return &file{cl: cl, ctx: ctx, meta: m}, nil
}

// Open implements chio.FileSystem.
func (cl *Client) Open(name string) (chio.File, error) { return cl.open(cl.ctx, name) }

func (cl *Client) open(ctx context.Context, name string) (chio.File, error) {
	m, err := cl.meta.Lookup(ctx, name)
	if err != nil {
		return nil, err
	}
	return &file{cl: cl, ctx: ctx, meta: m}, nil
}

// Stat implements chio.FileSystem.
func (cl *Client) Stat(name string) (chio.FileInfo, error) { return cl.stat(cl.ctx, name) }

func (cl *Client) stat(ctx context.Context, name string) (chio.FileInfo, error) {
	m, err := cl.meta.Stat(ctx, name)
	if err != nil {
		return chio.FileInfo{}, err
	}
	return chio.FileInfo{Name: name, Size: m.Size}, nil
}

// Remove implements chio.FileSystem.
func (cl *Client) Remove(name string) error { return cl.remove(cl.ctx, name) }

func (cl *Client) remove(ctx context.Context, name string) error {
	m, err := cl.meta.Remove(ctx, name)
	if err != nil {
		return err
	}
	var wg sync.WaitGroup
	rm := func(d *pvfs.DataConn) {
		defer wg.Done()
		d.RemovePiece(ctx, m.Handle)
	}
	for _, d := range cl.primary {
		wg.Add(1)
		go rm(d)
	}
	for _, d := range cl.mirror {
		wg.Add(1)
		go rm(d)
	}
	wg.Wait()
	return nil
}

// List implements chio.FileSystem.
func (cl *Client) List(prefix string) ([]chio.FileInfo, error) { return cl.list(cl.ctx, prefix) }

func (cl *Client) list(ctx context.Context, prefix string) ([]chio.FileInfo, error) {
	metas, err := cl.meta.List(ctx, prefix)
	if err != nil {
		return nil, err
	}
	out := make([]chio.FileInfo, 0, len(metas))
	for _, m := range metas {
		out = append(out, chio.FileInfo{Name: m.Name, Size: m.Size})
	}
	return out, nil
}

func (cl *Client) recordAsyncErr(err error) {
	if err == nil {
		return
	}
	cl.asyncMu.Lock()
	if cl.asyncErr == nil {
		cl.asyncErr = err
	}
	cl.asyncMu.Unlock()
}

// AsyncErr returns the first error from background mirror writes, if
// any (only relevant with the ClientAsync protocol).
func (cl *Client) AsyncErr() error {
	cl.asyncMu.Lock()
	defer cl.asyncMu.Unlock()
	return cl.asyncErr
}

// file is an open CEFT file handle.
type file struct {
	cl     *Client
	ctx    context.Context
	mu     sync.Mutex
	meta   pvfs.Meta
	off    int64
	closed bool
}

func (f *file) Name() string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.meta.Name
}

var errFileClosed = fmt.Errorf("ceft: file already closed")

// handle returns the file's metadata, or an error once closed.
func (f *file) handle() (pvfs.Meta, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return pvfs.Meta{}, errFileClosed
	}
	return f.meta, nil
}

func (f *file) refreshSize(m *pvfs.Meta) error {
	fresh, err := f.cl.meta.Stat(f.ctx, m.Name)
	if err != nil {
		return err
	}
	m.Size = fresh.Size
	f.mu.Lock()
	if !f.closed {
		f.meta.Size = fresh.Size
	}
	f.mu.Unlock()
	return nil
}

// runsWriter issues all of one server's stripe runs. Plain writes
// coalesce into one vectored RPC; the server-side duplication
// protocols stay one RPC per run because the dup ops carry a single
// (offset, data) pair on the wire.
type runsWriter func(ctx context.Context, d *pvfs.DataConn, handle uint64, runs []pvfs.StripeRun, p []byte) error

func plainWrite(ctx context.Context, d *pvfs.DataConn, handle uint64, runs []pvfs.StripeRun, p []byte) error {
	return d.WriteRuns(ctx, handle, runs, p)
}

func dupSyncWrite(ctx context.Context, d *pvfs.DataConn, handle uint64, runs []pvfs.StripeRun, p []byte) error {
	for _, r := range runs {
		if err := d.WritePieceDup(ctx, handle, r.ServerOff, p[r.BufOff:r.BufOff+r.Length], true); err != nil {
			return err
		}
	}
	return nil
}

func dupAsyncWrite(ctx context.Context, d *pvfs.DataConn, handle uint64, runs []pvfs.StripeRun, p []byte) error {
	for _, r := range runs {
		if err := d.WritePieceDup(ctx, handle, r.ServerOff, p[r.BufOff:r.BufOff+r.Length], false); err != nil {
			return err
		}
	}
	return nil
}

// writeRunsPerServer issues the per-server runs of one group using
// write, returning one error slot per server (nil where the server
// took all of its runs, or had none).
func writeRunsPerServer(ctx context.Context, conns []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, write runsWriter) []error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	for server, list := range runs {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(server int, list []pvfs.StripeRun) {
			defer wg.Done()
			errs[server] = write(ctx, conns[server], handle, list, p)
		}(server, list)
	}
	wg.Wait()
	return errs
}

// writeRuns issues the per-server runs of one group using write and
// returns the first per-server error.
func writeRuns(ctx context.Context, conns []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, write runsWriter) error {
	for _, err := range writeRunsPerServer(ctx, conns, runs, handle, p, write) {
		if err != nil {
			return err
		}
	}
	return nil
}

// degradeWrites retries each failed primary server's runs as plain
// writes on its mirror partner (RAID-10 degraded mode: a write
// survives as long as one member of every pair takes it). Only
// transport-level failures — the primary dead or hung — are degraded;
// an application-level refusal (e.g. a server-side protocol without
// mirror configuration) propagates, because silently dropping to one
// copy there would mask a misconfiguration rather than a fault. A
// server whose mirror partner is also down keeps its original error.
func (cl *Client) degradeWrites(ctx context.Context, errs []error, runs [][]pvfs.StripeRun, handle uint64, p []byte) error {
	for i, orig := range errs {
		if orig == nil {
			continue
		}
		if ctx.Err() != nil {
			return orig
		}
		if !errors.Is(orig, chio.ErrServerDown) && !errors.Is(orig, chio.ErrTimeout) {
			return orig
		}
		if err := cl.mirror[i].WriteRuns(ctx, handle, runs[i], p); err != nil {
			return orig
		}
		cl.addDegraded(1)
	}
	return nil
}

// WriteAt duplicates the write onto both groups (RAID-10) using the
// configured duplication protocol. The root span ties the per-server
// duplication RPCs into one trace for this application write.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	ctx, sp := f.cl.tracer.Start(f.ctx, "write")
	n, err := f.writeAt(ctx, p, off)
	sp.AddBytes(int64(n))
	sp.Finish(err)
	return n, err
}

func (f *file) writeAt(ctx context.Context, p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ceft: negative write offset")
	}
	m, err := f.handle()
	if err != nil {
		return 0, err
	}
	n := int64(len(p))
	if n == 0 {
		return 0, nil
	}
	runs := pvfs.Decompose(off, n, m.StripeSize, len(f.cl.primary))
	switch f.cl.opts.WriteProtocol {
	case ClientSync:
		// Both groups are written concurrently; a server failure is
		// tolerated as long as its pair partner took the data (RAID-10
		// degraded mode — redundancy is reduced, availability is not).
		var wg sync.WaitGroup
		var perrs, merrs []error
		wg.Add(2)
		go func() { defer wg.Done(); perrs = writeRunsPerServer(ctx, f.cl.primary, runs, m.Handle, p, plainWrite) }()
		go func() { defer wg.Done(); merrs = writeRunsPerServer(ctx, f.cl.mirror, runs, m.Handle, p, plainWrite) }()
		wg.Wait()
		var deg int64
		for i := range perrs {
			if perrs[i] != nil && merrs[i] != nil {
				return 0, perrs[i]
			}
			if perrs[i] != nil || merrs[i] != nil {
				deg++
			}
		}
		f.cl.addDegraded(deg)
	case ClientAsync:
		perrs := writeRunsPerServer(ctx, f.cl.primary, runs, m.Handle, p, plainWrite)
		// A dead primary degrades to a synchronous write on its mirror
		// partner (the background duplicate below rewrites the same
		// bytes there, which is harmless).
		if err := f.cl.degradeWrites(ctx, perrs, runs, m.Handle, p); err != nil {
			return 0, err
		}
		dup := append([]byte(nil), p...)
		f.cl.asyncWG.Add(1)
		go func() {
			defer f.cl.asyncWG.Done()
			// The mirror duplicate outlives the caller's request
			// context by design (the protocol's weaker guarantee), so
			// it is not bound to f.ctx.
			f.cl.recordAsyncErr(writeRuns(context.Background(), f.cl.mirror, runs, m.Handle, dup, plainWrite))
		}()
	case ServerSync:
		perrs := writeRunsPerServer(ctx, f.cl.primary, runs, m.Handle, p, dupSyncWrite)
		// A dead primary degrades to plain writes on its mirror; an
		// alive primary's refusal (forward failure, missing mirror
		// config) still propagates.
		if err := f.cl.degradeWrites(ctx, perrs, runs, m.Handle, p); err != nil {
			return 0, err
		}
	case ServerAsync:
		perrs := writeRunsPerServer(ctx, f.cl.primary, runs, m.Handle, p, dupAsyncWrite)
		if err := f.cl.degradeWrites(ctx, perrs, runs, m.Handle, p); err != nil {
			return 0, err
		}
	default:
		return 0, fmt.Errorf("ceft: unknown write protocol %v", f.cl.opts.WriteProtocol)
	}
	// The size RPC is needed only when the write extends the file: the
	// cached size can lag the manager's but never exceeds it, so
	// off+n <= cached size proves the manager already records it.
	if off+n > m.Size {
		if err := f.cl.meta.GrowSize(ctx, m.Name, off+n); err != nil {
			return 0, err
		}
		f.mu.Lock()
		if !f.closed && off+n > f.meta.Size {
			f.meta.Size = off + n
		}
		f.mu.Unlock()
	}
	return int(n), nil
}

// readRuns issues per-server read runs against the chosen conns, each
// server's runs coalesced into one vectored RPC. fallback, when
// non-nil, provides each server's mirror partner: when the vectored
// read fails — including by exhausting the transport's deadline/retry
// budget with chio.ErrTimeout or chio.ErrServerDown — each of that
// server's runs is retried individually on the mirror, which is
// CEFT's RAID-10 degraded mode (a dead or hung server's data remains
// available on its mirror, and a partial failure degrades per run
// rather than failing the whole request).
func readRuns(ctx context.Context, conns, fallback []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, failovers *int64) error {
	return readRunsWith(ctx, conns, fallback, runs, handle, p, failovers,
		(*pvfs.DataConn).ReadRuns)
}

// readRunsList is readRuns over the list-I/O op: each server's runs —
// which may be unsorted and overlapping, the decomposition of many
// discontiguous logical ranges — travel as one OpListRead. The mirror
// fallback is unchanged: a failed server degrades per run onto its
// partner.
func readRunsList(ctx context.Context, conns, fallback []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, failovers *int64) error {
	return readRunsWith(ctx, conns, fallback, runs, handle, p, failovers,
		(*pvfs.DataConn).ReadRunsList)
}

func readRunsWith(ctx context.Context, conns, fallback []*pvfs.DataConn, runs [][]pvfs.StripeRun, handle uint64, p []byte, failovers *int64,
	read func(d *pvfs.DataConn, ctx context.Context, handle uint64, list []pvfs.StripeRun, p []byte) error) error {
	errs := make([]error, len(conns))
	var wg sync.WaitGroup
	var failedOver int64
	var mu sync.Mutex
	for server, list := range runs {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(server int, list []pvfs.StripeRun) {
			defer wg.Done()
			d := conns[server]
			err := read(d, ctx, handle, list, p)
			if err == nil {
				return
			}
			if ctx.Err() != nil || fallback == nil || fallback[server] == nil || fallback[server] == d {
				errs[server] = err
				return
			}
			for _, r := range list {
				mu.Lock()
				failedOver++
				mu.Unlock()
				if ferr := fallback[server].ReadRun(ctx, handle, r, p); ferr != nil {
					errs[server] = ferr
					return
				}
			}
		}(server, list)
	}
	wg.Wait()
	if failovers != nil {
		*failovers += failedOver
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ReadAt serves the read with doubled parallelism and hot-spot
// skipping per the client options.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if off < 0 {
		return 0, fmt.Errorf("ceft: negative read offset")
	}
	m, err := f.handle()
	if err != nil {
		return 0, err
	}
	want := int64(len(p))
	if off+want > m.Size {
		if err := f.refreshSize(&m); err != nil {
			return 0, err
		}
	}
	if off >= m.Size {
		return 0, io.EOF
	}
	n := want
	var outErr error
	if off+n > m.Size {
		n = m.Size - off
		outErr = io.EOF
	}
	// No up-front zeroing pass: the runs tile [0, n) of p exactly, and
	// the vectored read path zero-fills each run's hole/EOF tail.
	// The root span ties the per-server (and failover) RPC spans below
	// into one trace for this application read.
	ctx, sp := f.cl.tracer.Start(f.ctx, "read")
	g := len(f.cl.primary)
	if !f.cl.opts.DoubledReads {
		conns, _ := f.cl.pickConns(ctx, true)
		runs := pvfs.Decompose(off, n, m.StripeSize, g)
		var fo int64
		if err := readRuns(ctx, conns, f.cl.partners(conns), runs, m.Handle, p[:n], &fo); err != nil {
			sp.Finish(err)
			return 0, err
		}
		f.cl.addFailovers(fo)
		sp.AddBytes(n)
		sp.Finish(nil)
		return int(n), outErr
	}
	// Doubled parallelism: first half from the primary group, second
	// half from the mirror group, concurrently (2G servers active).
	half := n / 2
	primConns, _ := f.cl.pickConns(ctx, true)
	mirrConns, _ := f.cl.pickConns(ctx, false)
	var wg sync.WaitGroup
	var err1, err2 error
	if half > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs := pvfs.Decompose(off, half, m.StripeSize, g)
			var fo int64
			err1 = readRuns(ctx, primConns, f.cl.partners(primConns), runs, m.Handle, p[:half], &fo)
			f.cl.addFailovers(fo)
		}()
	}
	if n-half > 0 {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runs := pvfs.Decompose(off+half, n-half, m.StripeSize, g)
			var fo int64
			err2 = readRuns(ctx, mirrConns, f.cl.partners(mirrConns), runs, m.Handle, p[half:n], &fo)
			f.cl.addFailovers(fo)
		}()
	}
	wg.Wait()
	if err1 != nil {
		sp.Finish(err1)
		return 0, err1
	}
	if err2 != nil {
		sp.Finish(err2)
		return 0, err2
	}
	sp.AddBytes(n)
	sp.Finish(nil)
	return int(n), outErr
}

// ReadvAt implements chio.VectorReaderAt: the whole segment list is
// decomposed into per-server stripe runs and served with one list-I/O
// RPC per data server, with hot-spot skipping applied to the
// connection choice and the per-run mirror fallback preserved — a
// server that fails its list read degrades run by run onto its
// partner, exactly like the contiguous path. Doubled-group reads do
// not apply here (the list already fans out to every server); the
// preferred group serves it.
func (f *file) ReadvAt(segs []chio.Seg, dst []byte) ([]int64, error) {
	m, err := f.handle()
	if err != nil {
		return nil, err
	}
	var maxEnd int64
	for _, s := range segs {
		if s.Off < 0 || s.Len < 0 {
			return nil, fmt.Errorf("ceft: negative segment [%d,+%d)", s.Off, s.Len)
		}
		if end := s.Off + s.Len; end > maxEnd {
			maxEnd = end
		}
	}
	if maxEnd > m.Size {
		if err := f.refreshSize(&m); err != nil {
			return nil, err
		}
	}
	var total int64
	for _, s := range segs {
		total += s.Len
	}
	if total > int64(len(dst)) {
		return nil, fmt.Errorf("ceft: readv needs %d bytes, dst holds %d", total, len(dst))
	}
	g := len(f.cl.primary)
	perServer := make([][]pvfs.StripeRun, g)
	lens := make([]int64, len(segs))
	var base, served int64
	for i, s := range segs {
		n := m.Size - s.Off
		if n < 0 {
			n = 0
		}
		if n > s.Len {
			n = s.Len
		}
		lens[i] = n
		if n > 0 {
			for server, list := range pvfs.Decompose(s.Off, n, m.StripeSize, g) {
				for _, r := range list {
					r.BufOff += base
					perServer[server] = append(perServer[server], r)
				}
			}
			served += n
		}
		// EOF tails read back as zeros.
		clear(dst[base+n : base+s.Len])
		base += s.Len
	}
	ctx, sp := f.cl.tracer.Start(f.ctx, "readv")
	conns, _ := f.cl.pickConns(ctx, true)
	var fo int64
	if err := readRunsList(ctx, conns, f.cl.partners(conns), perServer, m.Handle, dst, &fo); err != nil {
		sp.Finish(err)
		return nil, err
	}
	f.cl.addFailovers(fo)
	sp.AddBytes(served)
	sp.Finish(nil)
	return lens, nil
}

func (f *file) Read(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.ReadAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Write(p []byte) (int, error) {
	f.mu.Lock()
	off := f.off
	f.mu.Unlock()
	n, err := f.WriteAt(p, off)
	f.mu.Lock()
	f.off = off + int64(n)
	f.mu.Unlock()
	return n, err
}

func (f *file) Seek(offset int64, whence int) (int64, error) {
	m, err := f.handle()
	if err != nil {
		return 0, err
	}
	if whence == io.SeekEnd {
		if err := f.refreshSize(&m); err != nil {
			return 0, err
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var next int64
	switch whence {
	case io.SeekStart:
		next = offset
	case io.SeekCurrent:
		next = f.off + offset
	case io.SeekEnd:
		next = m.Size + offset
	default:
		return 0, fmt.Errorf("ceft: bad whence %d", whence)
	}
	if next < 0 {
		return 0, fmt.Errorf("ceft: negative seek position")
	}
	f.off = next
	return next, nil
}

// Close settles the configured duplication protocol (client-async
// waits for the client's background mirror writes; server-async asks
// every primary server to flush its forward queue) and invalidates the
// handle. A second Close is a safe no-op.
func (f *file) Close() error {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return nil
	}
	f.closed = true
	f.meta = pvfs.Meta{}
	f.mu.Unlock()
	switch f.cl.opts.WriteProtocol {
	case ClientAsync:
		f.cl.asyncWG.Wait()
		return f.cl.AsyncErr()
	case ServerAsync:
		var first error
		for _, d := range f.cl.primary {
			if err := d.FlushForwards(f.ctx); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	return nil
}
